//! Canonical campaign definitions shared by experiments, the `campaign`
//! binary, the perf smoke bench, and the CI determinism canary.
//!
//! The protocol face-off is *the* showcase sweep: every contending
//! protocol over the same batch-drain scenario axis, paired seeds, one
//! mergeable statistics pass — replacing the bespoke
//! `monte_carlo`-per-protocol loops T2 used to hand-roll.

use lowsense::{LowSensing, Params};
use lowsense_baselines::{
    CjpConfig, CjpMwu, PolynomialBackoff, ProbBeb, SlottedAloha, WindowedBeb,
};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::scenario::scenarios;

/// The face-off campaign: every baseline protocol × batch sizes `ns` ×
/// `replicates` seeded runs. Scenarios record totals only (throughput is
/// the face-off's metric), so cells stay cheap at large `n`.
///
/// Protocol labels, in axis order: `low-sensing`, `beb-window`,
/// `beb-prob`, `poly(k=2)`, `aloha-genie`, `cjp-mwu`.
pub fn faceoff_spec(ns: &[u64], replicates: u32, seed: u64) -> CampaignSpec {
    CampaignSpec::new("faceoff")
        .seed(seed)
        .replicates(replicates)
        .scenarios(ns.iter().map(|&n| {
            ScenarioPoint::new(scenarios::protocol_faceoff(n).totals_only().boxed())
                .knob("n", n as f64)
        }))
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
        .protocol("beb-window", |sc, _| {
            sc.run_sparse(|rng| WindowedBeb::new(2, 40, rng))
        })
        .protocol("beb-prob", |sc, _| sc.run_sparse(|_| ProbBeb::new(0.5)))
        .protocol("poly(k=2)", |sc, _| {
            sc.run_sparse(|rng| PolynomialBackoff::new(2, 2, rng))
        })
        .protocol("aloha-genie", |sc, knobs| {
            // The genie knows the batch size — read it off the knob axis.
            let n = knobs["n"] as u64;
            sc.run_sparse(move |_| SlottedAloha::genie(n))
        })
        .protocol("cjp-mwu", |sc, _| {
            sc.run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        })
}

/// The tiny face-off instance the CI canary and the perf smoke bench run:
/// small batches, 2 replicates — a few hundred milliseconds of work whose
/// artifact must be byte-identical for every shard count.
pub fn faceoff_small_spec(seed: u64) -> CampaignSpec {
    faceoff_spec(&[64, 128], 2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_faceoff_grid_shape() {
        let spec = faceoff_small_spec(3);
        assert_eq!(spec.cell_count(), 12, "2 scenarios × 6 protocols");
        assert_eq!(spec.unit_count(), 24);
    }

    #[test]
    fn genie_reads_the_batch_knob() {
        let r = faceoff_small_spec(5).run_sharded(2);
        // Every protocol drains the batch on every cell.
        for cell in &r.cells {
            assert_eq!(
                cell.stats.successes, cell.stats.arrivals,
                "{} / {} did not drain",
                cell.scenario, cell.protocol
            );
        }
        // LSB beats windowed BEB on overall throughput at n=128.
        let lsb = r.cell(1, 0).stats.throughput.mean();
        let beb = r.cell(1, 1).stats.throughput.mean();
        assert!(lsb > beb * 0.8, "lsb {lsb} vs beb {beb}");
    }
}
