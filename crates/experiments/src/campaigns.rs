//! Canonical campaign definitions shared by experiments, the `campaign`
//! binary, the perf smoke bench, and the CI determinism canary.
//!
//! The protocol face-off is *the* showcase sweep: every contending
//! protocol over the same batch-drain scenario axis, paired seeds, one
//! mergeable statistics pass — replacing the bespoke
//! `monte_carlo`-per-protocol loops T2 used to hand-roll.

use lowsense::{LowSensing, Params};
use lowsense_baselines::{
    CjpConfig, CjpMwu, NoCdBackoff, PolynomialBackoff, ProbBeb, SlottedAloha, WindowedBeb,
};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::feedback::ChannelModel;
use lowsense_sim::scenario::scenarios;

/// The face-off campaign: every baseline protocol × batch sizes `ns` ×
/// `replicates` seeded runs. Scenarios record totals only (throughput is
/// the face-off's metric), so cells stay cheap at large `n`.
///
/// Protocol labels, in axis order: `low-sensing`, `beb-window`,
/// `beb-prob`, `poly(k=2)`, `aloha-genie`, `cjp-mwu`.
pub fn faceoff_spec(ns: &[u64], replicates: u32, seed: u64) -> CampaignSpec {
    CampaignSpec::new("faceoff")
        .seed(seed)
        .replicates(replicates)
        .scenarios(ns.iter().map(|&n| {
            ScenarioPoint::new(scenarios::protocol_faceoff(n).totals_only().boxed())
                .knob("n", n as f64)
        }))
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
        .protocol("beb-window", |sc, _| {
            sc.run_sparse(|rng| WindowedBeb::new(2, 40, rng))
        })
        .protocol("beb-prob", |sc, _| sc.run_sparse(|_| ProbBeb::new(0.5)))
        .protocol("poly(k=2)", |sc, _| {
            sc.run_sparse(|rng| PolynomialBackoff::new(2, 2, rng))
        })
        .protocol("aloha-genie", |sc, knobs| {
            // The genie knows the batch size — read it off the knob axis.
            let n = knobs["n"] as u64;
            sc.run_sparse(move |_| SlottedAloha::genie(n))
        })
        .protocol("cjp-mwu", |sc, _| {
            sc.run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        })
}

/// The tiny face-off instance the CI canary and the perf smoke bench run:
/// small batches, 2 replicates — a few hundred milliseconds of work whose
/// artifact must be byte-identical for every shard count.
pub fn faceoff_small_spec(seed: u64) -> CampaignSpec {
    faceoff_spec(&[64, 128], 2, seed)
}

/// The feedback-model grid: the protocol face-off rerun under every
/// channel model — jammed and unjammed batch drains × the sparse
/// contenders (plus the no-CD-native Jiang–Zheng baseline) × the explicit
/// model axis {`ternary`, `no-cd`, `costly(alpha=0.5)`}.
///
/// Both scenario points carry a hard `until_slot` horizon: full-sensing
/// LSB *livelocks* on the no-CD channel (collisions read as silence, so
/// it only ever gets more aggressive), and the grid's job is to measure
/// that degradation under a bounded clock, not to hang on it.
///
/// Protocol labels, in axis order: `low-sensing`, `beb-window`,
/// `beb-prob`, `poly(k=2)`, `jz-nocd`.
pub fn feedback_grid_spec(n: u64, replicates: u32, seed: u64) -> CampaignSpec {
    let horizon = n.saturating_mul(200);
    CampaignSpec::new("feedback_grid")
        .seed(seed)
        .replicates(replicates)
        .scenario(
            ScenarioPoint::new(
                scenarios::batch_drain(n)
                    .until_slot(horizon)
                    .totals_only()
                    .boxed(),
            )
            .knob("n", n as f64),
        )
        .scenario(
            ScenarioPoint::new(
                scenarios::random_jam_batch(n, 0.2)
                    .until_slot(horizon)
                    .totals_only()
                    .boxed(),
            )
            .knob("n", n as f64)
            .knob("rho", 0.2),
        )
        .models([
            ChannelModel::Ternary,
            ChannelModel::NoCollisionDetection,
            ChannelModel::CostlyCollisions { alpha: 0.5 },
        ])
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
        .protocol("beb-window", |sc, _| {
            sc.run_sparse(|rng| WindowedBeb::new(2, 40, rng))
        })
        .protocol("beb-prob", |sc, _| sc.run_sparse(|_| ProbBeb::new(0.5)))
        .protocol("poly(k=2)", |sc, _| {
            sc.run_sparse(|rng| PolynomialBackoff::new(2, 2, rng))
        })
        .protocol("jz-nocd", |sc, _| {
            sc.run_sparse(|_| NoCdBackoff::new(4.0, 4096.0, 2.0))
        })
}

/// The canonical feedback-grid instance the CI canary pins: `n = 48`,
/// 2 replicates — 2 scenarios × 5 protocols × 3 models = 30 cells whose
/// artifact (`CAMPAIGN_feedback_grid.json`) must be byte-identical for
/// every shard count.
pub fn feedback_grid_small_spec(seed: u64) -> CampaignSpec {
    feedback_grid_spec(48, 2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_faceoff_grid_shape() {
        let spec = faceoff_small_spec(3);
        assert_eq!(spec.cell_count(), 12, "2 scenarios × 6 protocols");
        assert_eq!(spec.unit_count(), 24);
    }

    #[test]
    fn genie_reads_the_batch_knob() {
        let r = faceoff_small_spec(5).run_sharded(2);
        // Every protocol drains the batch on every cell.
        for cell in &r.cells {
            assert_eq!(
                cell.stats.successes, cell.stats.arrivals,
                "{} / {} did not drain",
                cell.scenario, cell.protocol
            );
        }
        // LSB beats windowed BEB on overall throughput at n=128.
        let lsb = r.cell(1, 0).stats.throughput.mean();
        let beb = r.cell(1, 1).stats.throughput.mean();
        assert!(lsb > beb * 0.8, "lsb {lsb} vs beb {beb}");
    }

    #[test]
    fn feedback_grid_shape_and_axes() {
        let spec = feedback_grid_small_spec(3);
        assert_eq!(
            spec.cell_count(),
            30,
            "2 scenarios × 5 protocols × 3 models"
        );
        assert_eq!(spec.unit_count(), 60);
    }

    #[test]
    fn feedback_grid_models_change_outcomes() {
        let r = feedback_grid_small_spec(5).run_sharded(2);
        assert_eq!(r.models, vec!["ternary", "no-cd", "costly(alpha=0.5)"]);
        // Every cell stays inside its horizon and accounted.
        for cell in &r.cells {
            assert!(cell.stats.successes <= cell.stats.arrivals, "{cell:?}");
        }
        // LSB on the ternary channel drains the plain batch; on the no-CD
        // channel the same protocol walks the wrong way and times out
        // short of a full drain — the degradation the grid exists to show.
        let lsb_ternary = &r.cell_model(0, 0, 0).stats;
        let lsb_nocd = &r.cell_model(0, 0, 1).stats;
        assert_eq!(lsb_ternary.successes, lsb_ternary.arrivals);
        assert!(
            lsb_nocd.successes < lsb_nocd.arrivals,
            "no-CD should starve full-sensing LSB: {lsb_nocd:?}"
        );
        // The JZ baseline is no-CD-native: it drains the batch there.
        let jz_nocd = &r.cell_model(0, 4, 1).stats;
        assert_eq!(jz_nocd.successes, jz_nocd.arrivals, "{jz_nocd:?}");
        // Costly collisions dilate the clock on the jammed batch.
        assert!(r.cell_model(1, 0, 2).stats.overhead_slots > 0);
        // And ternary cells never pay overhead.
        assert_eq!(r.cell_model(1, 0, 0).stats.overhead_slots, 0);
    }
}
