//! # lowsense-experiments — the reproduction harness
//!
//! Every theorem of the paper is reproduced as a table (sweep) or figure
//! (trajectory); ids (`T1`–`T9`, `F2`–`F6`, `A1`–`A5`, `X1`–`X2`) match the
//! per-experiment index in `DESIGN.md` and the paper-vs-measured record in
//! `EXPERIMENTS.md`. Run them all with
//!
//! ```text
//! cargo run --release -p lowsense-experiments --bin repro -- all
//! ```
//!
//! or a subset with `repro t2 t4 f3`, at reduced scale with `--quick`, and
//! export CSVs with `--csv <dir>`.
//!
//! ```
//! use lowsense_experiments::{registry, Scale};
//!
//! let f3 = registry().into_iter().find(|e| e.id == "F3").unwrap();
//! let tables = (f3.run)(Scale::Quick);
//! assert!(!tables.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaigns;
pub mod common;
pub mod exp;
pub mod runner;
pub mod table;

pub use runner::{monte_carlo, parallel_map, Scale};
pub use table::{Cell, Table};

/// A registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Index id (`T1`, `F3`, `A2`, …).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The paper artifact it reproduces.
    pub claim: &'static str,
    /// Entry point.
    pub run: fn(Scale) -> Vec<Table>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

/// All experiments, in index order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "T1",
            title: "implicit throughput over time",
            claim: "Theorem 1.3 / Corollary 5.21",
            run: exp::t1::run,
        },
        Experiment {
            id: "T2",
            title: "overall throughput vs N, all baselines",
            claim: "Corollary 1.4 + §1 BEB O(1/ln N)",
            run: exp::t2::run,
        },
        Experiment {
            id: "T3",
            title: "bounded backlog under adversarial queuing",
            claim: "Corollary 1.5",
            run: exp::t3::run,
        },
        Experiment {
            id: "T4",
            title: "per-packet accesses, finite streams",
            claim: "Theorem 1.6 / 5.25",
            run: exp::t4::run,
        },
        Experiment {
            id: "T5",
            title: "per-packet accesses, adversarial queuing",
            claim: "Theorem 1.7 / 5.27",
            run: exp::t5::run,
        },
        Experiment {
            id: "T6",
            title: "per-packet accesses, infinite streams",
            claim: "Theorem 1.8 / 5.29",
            run: exp::t6::run,
        },
        Experiment {
            id: "T7",
            title: "reactive targeted jamming energy",
            claim: "Theorem 1.9(1) / 5.26",
            run: exp::t7::run,
        },
        Experiment {
            id: "T8",
            title: "reactive DoS + adversarial queuing",
            claim: "Theorem 1.9(2) / 5.28",
            run: exp::t8::run,
        },
        Experiment {
            id: "T9",
            title: "reactive adversary vs exponential backoff",
            claim: "§1.3 O(1/T) collapse",
            run: exp::t9::run,
        },
        Experiment {
            id: "F2",
            title: "potential drift per interval",
            claim: "Theorem 5.18",
            run: exp::f2::run,
        },
        Experiment {
            id: "F3",
            title: "slot probabilities vs contention",
            claim: "Lemmas 5.1–5.3",
            run: exp::f3::run,
        },
        Experiment {
            id: "F4",
            title: "herd trajectory of a batch",
            claim: "§4 dynamics, w_max = O(Φ ln²Φ)",
            run: exp::f4::run,
        },
        Experiment {
            id: "F5",
            title: "batch makespan per packet",
            claim: "Corollary 1.4 (Θ(N) makespan)",
            run: exp::f5::run,
        },
        Experiment {
            id: "F6",
            title: "energy split: sends vs listens vs CJP",
            claim: "full energy efficiency (title claim)",
            run: exp::f6::run,
        },
        Experiment {
            id: "A1",
            title: "ablation: constant c",
            claim: "design choice (§3)",
            run: exp::a1::run,
        },
        Experiment {
            id: "A2",
            title: "ablation: listening exponent ln^k",
            claim: "design choice (§3, Lemma 5.9)",
            run: exp::a2::run,
        },
        Experiment {
            id: "A3",
            title: "ablation: gentle vs constant-factor updates",
            claim: "design choice (§3)",
            run: exp::a3::run,
        },
        Experiment {
            id: "A4",
            title: "ablation: send/listen coin coupling",
            claim: "design choice (§5.6 remark)",
            run: exp::a4::run,
        },
        Experiment {
            id: "A5",
            title: "ablation: minimum window w_min",
            claim: "design choice (§3)",
            run: exp::a5::run,
        },
        Experiment {
            id: "X1",
            title: "extension: latency fairness",
            claim: "§6 open problem (no fairness guarantee)",
            run: exp::x1::run,
        },
        Experiment {
            id: "X2",
            title: "extension: wake-up latency (first success)",
            claim: "§2 wake-up problem context",
            run: exp::x2::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let reg = registry();
        assert_eq!(reg.len(), 21);
        let ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
        assert_eq!(ids[0], "T1");
        assert_eq!(*ids.last().unwrap(), "X2");
    }
}
