//! X2 — Wake-up latency: time to the *first* success (extension).
//!
//! The related-work section (§2) contrasts contention resolution with the
//! *wake-up problem* — how long until any one transmission succeeds. For
//! `LOW-SENSING BACKOFF` a fresh batch starts at contention `N/w_min ≫ 1`,
//! and the herd must back off before any slot can be a singleton, so the
//! first success costs `Θ(polylog)`-ish settling time; oblivious BEB pays
//! similarly, while genie ALOHA (already at `C = 1`) succeeds in `O(1)`
//! expected slots. This quantifies the "cold start" price of not knowing N.

use lowsense_baselines::{SlottedAloha, WindowedBeb};
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::scenarios;

use crate::common::{lsb, mean, pow2_sweep};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Slot of the first success (all packets injected at 0).
fn first_success(r: &RunResult) -> f64 {
    r.per_packet
        .as_ref()
        .expect("per-packet stats")
        .iter()
        .filter_map(|p| p.departed)
        .min()
        .expect("at least one success") as f64
        + 1.0
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(10, 14));
    let mut table = Table::new(
        "X2",
        "wake-up latency: slots until the first successful transmission (batch)",
    )
    .columns([
        "N",
        "low-sensing",
        "beb-window",
        "aloha-genie",
        "lsb/ln²(N)",
    ]);

    for &n in &ns {
        let lsb = mean(monte_carlo(190_000 + n, scale.seeds(), |s| {
            first_success(&scenarios::batch_drain(n).seed(s).run_sparse(lsb()))
        }));
        let beb = mean(monte_carlo(191_000 + n, scale.seeds(), |s| {
            first_success(
                &scenarios::batch_drain(n)
                    .seed(s)
                    .run_sparse(|rng| WindowedBeb::new(2, 40, rng)),
            )
        }));
        let aloha = mean(monte_carlo(192_000 + n, scale.seeds(), |s| {
            first_success(
                &scenarios::batch_drain(n)
                    .seed(s)
                    .run_sparse(|_| SlottedAloha::genie(n)),
            )
        }));
        table.row(vec![
            Cell::UInt(n),
            Cell::Float(lsb, 1),
            Cell::Float(beb, 1),
            Cell::Float(aloha, 1),
            Cell::Float(lsb / (n as f64).ln().powi(2), 2),
        ]);
    }

    table.note(
        "extension: genie ALOHA wakes up in e ≈ 2.7 expected slots (it starts at C = 1); \
         the adaptive protocols must first disperse the herd from C = N/w_min — measured, \
         low-sensing's cold start tracks ≈ ln²(N) (Θ(ln N) collective backoffs delivered \
         through rare listening), far below BEB's near-linear climb",
    );
    table.note(
        "context (§2): Bender et al. [29] show O(ln ln* N) wake-up is possible with \
         synchronization messages; the ternary-feedback cold start is the price of \
         having none",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_grows_slowly_for_lsb() {
        let t = &run(Scale::Quick)[0];
        let get = |row: &Vec<Cell>, i: usize| match row[i] {
            Cell::Float(v, _) => v,
            _ => panic!("float"),
        };
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        // 16× packet growth, far less than 16× wake-up growth.
        assert!(
            get(last, 1) < 8.0 * get(first, 1),
            "wake-up scaled too fast: {} → {}",
            get(first, 1),
            get(last, 1)
        );
        // ALOHA-genie wakes up in O(1).
        assert!(get(last, 3) < 15.0, "genie wake-up {}", get(last, 3));
    }
}
