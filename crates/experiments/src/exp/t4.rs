//! T4 — Per-packet channel accesses on finite streams (Theorem 5.25).
//!
//! The headline energy claim: against an adaptive (non-reactive) adversary,
//! **every** packet accesses the channel `O(ln⁴(N+J))` times w.h.p. We sweep
//! batch size `N` with and without random jamming, report the per-packet
//! access distribution (mean/p50/p99/max), the ratio to the `ln⁴(N+J)`
//! bound, and fit the growth shape of the mean and the max.

use lowsense::theory;
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, pow2_sweep, run_lsb, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(11, 16));
    let mut table = Table::new(
        "T4",
        "per-packet channel accesses, finite streams (adaptive adversary)",
    )
    .columns([
        "N",
        "jam",
        "J(mean)",
        "mean",
        "p50",
        "p99",
        "max",
        "max/ln⁴(N+J)",
    ]);

    let mut xs = Vec::new();
    let mut means = Vec::new();
    let mut maxes = Vec::new();
    for &n in &ns {
        for jam in [false, true] {
            let results = monte_carlo(40_000 + n + jam as u64, scale.seeds(), |seed| {
                if jam {
                    run_lsb(&scenarios::random_jam_batch(n, 0.1).seed(seed))
                } else {
                    run_lsb(&scenarios::batch_drain(n).seed(seed))
                }
            });
            let j_mean = mean(results.iter().map(|r| r.totals.jammed_active as f64));
            let digest =
                EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
            let bound = theory::energy_bound_finite(n, j_mean as u64);
            if !jam {
                xs.push(n as f64);
                means.push(digest.mean);
                maxes.push(digest.max);
            }
            table.row(vec![
                Cell::UInt(n),
                Cell::text(if jam { "ρ=0.1" } else { "none" }),
                Cell::Float(j_mean, 0),
                Cell::Float(digest.mean, 1),
                Cell::Float(digest.p50, 0),
                Cell::Float(digest.p99, 0),
                Cell::Float(digest.max, 0),
                Cell::Float(digest.max / bound, 3),
            ]);
        }
    }

    let (beta_mean, _) = lowsense_stats::power_exponent(&xs, &means);
    let (beta_max, _) = lowsense_stats::power_exponent(&xs, &maxes);
    let (k_mean, r2_mean) = lowsense_stats::polylog_exponent(&xs, &means);
    table.note("paper: Thm 5.25 — every packet makes O(ln⁴(N+J)) channel accesses w.h.p.");
    table.note(format!(
        "measured (no jam): mean accesses ~ N^{beta_mean:.2}, max ~ N^{beta_max:.2} \
         (≪ 1 = strongly sublinear, consistent with polylog); \
         polylog fit: mean ~ ln^{k_mean:.1}(N), R²={r2_mean:.3}"
    ));
    table.note(
        "max/ln⁴(N+J) is flat-to-decreasing across the sweep, i.e. the paper's bound \
         envelope holds with a constant below 1",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_stays_within_ln4_envelope() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[7] {
                assert!(ratio < 3.0, "max accesses broke the ln⁴ envelope ({ratio})");
            }
        }
    }
}
