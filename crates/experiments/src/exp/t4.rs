//! T4 — Per-packet channel accesses on finite streams (Theorem 5.25).
//!
//! The headline energy claim: against an adaptive (non-reactive) adversary,
//! **every** packet accesses the channel `O(ln⁴(N+J))` times w.h.p. We sweep
//! batch size `N` with and without random jamming, report the per-packet
//! access distribution (mean/p50/p99/max), the ratio to the `ln⁴(N+J)`
//! bound, and fit the growth shape of the mean and the max.
//!
//! Ported onto the campaign layer: the `(N, jam)` grid is the scenario
//! axis of one [`CampaignSpec`] (protocol axis: `LOW-SENSING BACKOFF`),
//! and the digest columns come from the mergeable per-cell accumulators —
//! mean/max from the pooled Welford, p50/p99 from the quantile sketch.

use lowsense::theory;
use lowsense::{LowSensing, Params};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::scenario::scenarios;

use crate::common::pow2_sweep;
use crate::runner::Scale;
use crate::table::{Cell, Table};

/// The campaign seed T4 sweeps under.
const T4_SEED: u64 = 0x7_4;

/// The `(N, jam)` energy-sweep campaign (shared with the repro binary).
pub fn energy_spec(ns: &[u64], replicates: u32, seed: u64) -> CampaignSpec {
    CampaignSpec::new("energy-finite")
        .seed(seed)
        .replicates(replicates)
        .scenarios(ns.iter().flat_map(|&n| {
            [
                ScenarioPoint::new(scenarios::batch_drain(n).boxed())
                    .knob("n", n as f64)
                    .knob("rho", 0.0),
                ScenarioPoint::new(scenarios::random_jam_batch(n, 0.1).boxed())
                    .knob("n", n as f64)
                    .knob("rho", 0.1),
            ]
        }))
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(11, 16));
    let result = energy_spec(&ns, scale.seeds() as u32, T4_SEED).run();

    let mut table = Table::new(
        "T4",
        "per-packet channel accesses, finite streams (adaptive adversary)",
    )
    .columns([
        "N",
        "jam",
        "J(mean)",
        "mean",
        "p50",
        "p99",
        "max",
        "max/ln⁴(N+J)",
    ]);

    let mut xs = Vec::new();
    let mut means = Vec::new();
    let mut maxes = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        for (j, jam) in [false, true].into_iter().enumerate() {
            let stats = &result.cell(2 * i + j, 0).stats;
            let j_mean = stats.jammed_mean();
            let acc = stats.accesses.summary();
            let (p50, p99) = (
                stats.access_sketch.quantile(0.5),
                stats.access_sketch.quantile(0.99),
            );
            let bound = theory::energy_bound_finite(n, j_mean as u64);
            if !jam {
                xs.push(n as f64);
                means.push(acc.mean);
                maxes.push(acc.max);
            }
            table.row(vec![
                Cell::UInt(n),
                Cell::text(if jam { "ρ=0.1" } else { "none" }),
                Cell::Float(j_mean, 0),
                Cell::Float(acc.mean, 1),
                Cell::Float(p50, 0),
                Cell::Float(p99, 0),
                Cell::Float(acc.max, 0),
                Cell::Float(acc.max / bound, 3),
            ]);
        }
    }

    let (beta_mean, _) = lowsense_stats::power_exponent(&xs, &means);
    let (beta_max, _) = lowsense_stats::power_exponent(&xs, &maxes);
    let (k_mean, r2_mean) = lowsense_stats::polylog_exponent(&xs, &means);
    table.note("paper: Thm 5.25 — every packet makes O(ln⁴(N+J)) channel accesses w.h.p.");
    table.note(format!(
        "measured (no jam): mean accesses ~ N^{beta_mean:.2}, max ~ N^{beta_max:.2} \
         (≪ 1 = strongly sublinear, consistent with polylog); \
         polylog fit: mean ~ ln^{k_mean:.1}(N), R²={r2_mean:.3}"
    ));
    table.note(
        "max/ln⁴(N+J) is flat-to-decreasing across the sweep, i.e. the paper's bound \
         envelope holds with a constant below 1",
    );
    table.note(
        "digest source: campaign cell accumulators (pooled Welford mean/max; sketch p50/p99, \
         relative error < 0.4%)",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_stays_within_ln4_envelope() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[7] {
                assert!(ratio < 3.0, "max accesses broke the ln⁴ envelope ({ratio})");
            }
        }
    }
}
