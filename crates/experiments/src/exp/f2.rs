//! F2 — Potential drift over analysis intervals (Theorem 5.18).
//!
//! The engine of the whole proof: over an interval of length
//! `τ = max(w_max/ln²w_max, √N)/c_int`, the potential `Φ` drops by
//! `Ω(τ) − O(A+J)` w.h.p. We slice live runs with the paper's interval
//! schedule and report, per interval-length bucket: the mean drift per
//! slot, the fraction of intervals with negative drift, and the
//! arrival+jam credit `(A+J)/τ` that the theorem subtracts.

use lowsense::IntervalRecorder;
use lowsense_sim::scenario::scenarios;

use crate::common::lsb;
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};
use std::collections::BTreeMap;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 9, 1 << 12);
    let mut table = Table::new(
        "F2",
        format!("per-interval potential drift (Thm 5.18 schedule), batch N={n}"),
    )
    .columns([
        "jam",
        "τ-bucket",
        "intervals",
        "drift/slot(mean)",
        "frac(ΔΦ<0)",
        "(A+J)/τ(mean)",
    ]);

    for jam in [false, true] {
        let records = monte_carlo(100_000 + jam as u64, scale.seeds(), |seed| {
            let mut rec = IntervalRecorder::new(1.0);
            if jam {
                let _ = scenarios::random_jam_batch(n, 0.1)
                    .seed(seed)
                    .run_sparse_hooked(lsb(), &mut rec);
            } else {
                let _ = scenarios::batch_drain(n)
                    .seed(seed)
                    .run_sparse_hooked(lsb(), &mut rec);
            }
            rec.records().to_vec()
        });
        // Bucket by log2 of realized interval length.
        let mut buckets: BTreeMap<u32, Vec<lowsense::IntervalRecord>> = BTreeMap::new();
        for r in records.into_iter().flatten() {
            if r.len == 0 {
                continue;
            }
            let b = 63 - r.len.max(1).leading_zeros();
            buckets.entry(b).or_default().push(r);
        }
        for (b, rs) in &buckets {
            let count = rs.len() as u64;
            let drift = rs.iter().map(|r| r.drift_per_slot()).sum::<f64>() / count as f64;
            let neg = rs.iter().filter(|r| r.delta_phi() < 0.0).count() as f64 / count as f64;
            let credit = rs
                .iter()
                .map(|r| (r.arrivals + r.jams) as f64 / r.len as f64)
                .sum::<f64>()
                / count as f64;
            table.row(vec![
                Cell::text(if jam { "ρ=0.1" } else { "none" }),
                Cell::UInt(1u64 << b),
                Cell::UInt(count),
                Cell::Float(drift, 3),
                Cell::Float(neg, 3),
                Cell::Float(credit, 3),
            ]);
        }
    }

    table.note(
        "paper: Thm 5.18 — Φ drops Ω(τ) − O(A+J) per interval w.h.p. in τ: drift/slot \
         should be ≤ −Ω(1) once the jam credit is accounted, and the negative fraction \
         should approach 1 for long intervals",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_negative_on_average_without_jamming() {
        let t = &run(Scale::Quick)[0];
        // Weight drift by interval count for the no-jam rows.
        let mut weighted = 0.0;
        let mut total = 0.0;
        for row in &t.rows {
            let is_nojam = matches!(&row[0], Cell::Text(s) if s == "none");
            if !is_nojam {
                continue;
            }
            let (count, drift) = match (&row[2], &row[3]) {
                (Cell::UInt(c), Cell::Float(d, _)) => (*c as f64, *d),
                _ => panic!("unexpected cells"),
            };
            weighted += count * drift;
            total += count;
        }
        assert!(total > 0.0);
        assert!(
            weighted / total < 0.0,
            "mean drift {} should be negative",
            weighted / total
        );
    }
}
