//! F3 — Slot-outcome probabilities versus contention (Lemmas 5.1–5.3).
//!
//! The analysis rests on three envelopes for an unjammed slot with
//! contention `C` (all windows ≥ 2):
//!
//! * `C·e^{−2C} ≤ p_succ ≤ 2C·e^{−C}`,
//! * `e^{−2C} ≤ p_empty ≤ e^{−C}`,
//! * `p_noisy ≥ 1 − 2C·e^{−C} − e^{−C}`.
//!
//! We Monte Carlo a single slot directly (an ensemble of k packets each
//! sending with probability `C/k ≤ 1/2`) and check every bound. This also
//! doubles as a validation of the Binomial sampler feeding the grouped
//! engine.

use lowsense::theory;
use lowsense_sim::dist::Binomial;
use lowsense_sim::rng::SimRng;

use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

const PACKETS: u64 = 64;

fn sample_outcomes(c: f64, trials: u64, seed: u64) -> (f64, f64, f64) {
    let p = c / PACKETS as f64;
    let d = Binomial::new(PACKETS, p);
    let mut rng = SimRng::new(seed);
    let (mut succ, mut empty, mut noisy) = (0u64, 0u64, 0u64);
    for _ in 0..trials {
        match d.sample(&mut rng) {
            0 => empty += 1,
            1 => succ += 1,
            _ => noisy += 1,
        }
    }
    let t = trials as f64;
    (succ as f64 / t, empty as f64 / t, noisy as f64 / t)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials: u64 = scale.pick(200_000, 1_000_000);
    let cs = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut table = Table::new(
        "F3",
        format!("slot outcome probabilities vs contention C ({PACKETS} packets)"),
    )
    .columns([
        "C",
        "p_succ",
        "[lo,hi]",
        "p_empty",
        "[lo,hi]",
        "p_noisy",
        "≥lo",
        "in_bounds",
    ]);

    let mut all_ok = true;
    for &c in &cs {
        let runs = monte_carlo(110_000 + (c * 1000.0) as u64, scale.seeds(), |seed| {
            sample_outcomes(c, trials / scale.seeds(), seed)
        });
        let k = runs.len() as f64;
        let succ = runs.iter().map(|r| r.0).sum::<f64>() / k;
        let empty = runs.iter().map(|r| r.1).sum::<f64>() / k;
        let noisy = runs.iter().map(|r| r.2).sum::<f64>() / k;
        let (s_lo, s_hi) = (
            theory::success_probability_lower(c),
            theory::success_probability_upper(c),
        );
        let (e_lo, e_hi) = theory::empty_probability_bounds(c);
        let n_lo = theory::noisy_probability_lower(c);
        let tol = 3.0 / (trials as f64).sqrt();
        let ok = succ >= s_lo - tol
            && succ <= s_hi + tol
            && empty >= e_lo - tol
            && empty <= e_hi + tol
            && noisy >= n_lo - tol;
        all_ok &= ok;
        table.row(vec![
            Cell::Float(c, 3),
            Cell::Float(succ, 4),
            Cell::text(format!("[{s_lo:.4},{s_hi:.4}]")),
            Cell::Float(empty, 4),
            Cell::text(format!("[{e_lo:.4},{e_hi:.4}]")),
            Cell::Float(noisy, 4),
            Cell::Float(n_lo, 4),
            Cell::text(if ok { "yes" } else { "NO" }),
        ]);
    }

    table.note("paper: Lemmas 5.1–5.3 envelopes; every measured point must sit inside them");
    table.note(format!(
        "measured: all {} contention levels in bounds: {}",
        cs.len(),
        if all_ok {
            "yes"
        } else {
            "NO — check sampler"
        }
    ));
    table.note("success probability peaks at C = Θ(1) — the 'good contention' regime the algorithm steers toward");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_within_lemma_bounds() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            match &row[7] {
                Cell::Text(s) => assert_eq!(s, "yes", "bounds violated: {row:?}"),
                _ => panic!("expected flag"),
            }
        }
    }
}
