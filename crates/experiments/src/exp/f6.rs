//! F6 — The energy split: sends vs listens, and the CJP contrast.
//!
//! "Fully energy-efficient" means *both* operations are rare. We break
//! per-packet accesses into transmissions and pure listens for low-sensing
//! backoff, and put the every-slot listener (CJP MWU) next to it: its
//! accesses equal its lifetime, i.e. `Θ(N)` for a batch — the exponential
//! separation the paper's title is about.

use lowsense_baselines::{CjpConfig, CjpMwu};
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, pow2_sweep, run_lsb};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(10, 14));
    let mut table = Table::new("F6", "per-packet energy split on a batch of N").columns([
        "N",
        "lsb_sends",
        "lsb_listens",
        "lsb_total",
        "cjp_total(=lifetime)",
        "cjp/lsb",
    ]);

    let mut ratio_first = 0.0;
    let mut ratio_last = 0.0;
    for (i, &n) in ns.iter().enumerate() {
        let lsb = monte_carlo(130_000 + n, scale.seeds(), |s| {
            let r = run_lsb(&scenarios::protocol_faceoff(n).seed(s));
            let ps = r.per_packet.as_ref().expect("per-packet stats");
            let sends = mean(ps.iter().map(|p| p.sends as f64));
            let listens = mean(ps.iter().map(|p| p.listens as f64));
            (sends, listens)
        });
        let sends = mean(lsb.iter().map(|x| x.0));
        let listens = mean(lsb.iter().map(|x| x.1));
        let cjp = mean(monte_carlo(131_000 + n, scale.seeds(), |s| {
            let r = scenarios::protocol_faceoff(n)
                .seed(s)
                .run_grouped(|_| CjpMwu::new(CjpConfig::default()));
            mean(r.access_counts().iter().map(|&a| a as f64))
        }));
        let total = sends + listens;
        let ratio = cjp / total.max(1e-9);
        if i == 0 {
            ratio_first = ratio;
        }
        ratio_last = ratio;
        table.row(vec![
            Cell::UInt(n),
            Cell::Float(sends, 1),
            Cell::Float(listens, 1),
            Cell::Float(total, 1),
            Cell::Float(cjp, 0),
            Cell::Float(ratio, 1),
        ]);
    }

    table.note(
        "paper: low-sensing is sending- AND listening-efficient (polylog each); \
         short-feedback-loop algorithms pay Θ(lifetime) = Θ(N) listens on a batch",
    );
    table.note(format!(
        "measured: cjp/lsb energy ratio grows {ratio_first:.0}× → {ratio_last:.0}× across \
         the sweep — the separation widens with N exactly as predicted"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_widens_with_n() {
        let t = &run(Scale::Quick)[0];
        let ratio = |row: &Vec<Cell>| match row[5] {
            Cell::Float(v, _) => v,
            _ => panic!("float"),
        };
        let first = ratio(&t.rows[0]);
        let last = ratio(t.rows.last().unwrap());
        assert!(last > first, "cjp/lsb ratio should widen: {first} → {last}");
        assert!(
            last > 4.0,
            "separation should be substantial at the top end (got {last})"
        );
    }
}
