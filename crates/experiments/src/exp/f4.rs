//! F4 — Herd dynamics of a batch: windows, contention, potential (§4).
//!
//! The "slow feedback loop" in action: after a batch lands, contention
//! starts at `N/w_min ≫ C_high`, the herd backs off over many slots (each
//! packet seeing only a polylog sample of them), contention settles into
//! the good regime, and the potential decays roughly linearly until the
//! system drains. We trace `(backlog, C, w_max, Φ)` at geometric
//! checkpoints and verify the paper's structural claims:
//!
//! * contention is driven from `high` into `[C_low, C_high]` and stays
//!   near it (regime occupancy);
//! * `w_max = O(Φ·ln²Φ)` throughout (§4.4, used to prove energy bounds).

use lowsense::{LowSensing, PotentialTracker};
use lowsense_sim::feedback::SlotOutcome;
use lowsense_sim::hooks::Hooks;
use lowsense_sim::packet::PacketId;
use lowsense_sim::scenario::scenarios;
use lowsense_sim::time::Slot;

use crate::common::lsb;
use crate::runner::Scale;
use crate::table::{Cell, Table};

/// Trajectory snapshot taken at geometric slot checkpoints.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    slot: Slot,
    backlog: u64,
    contention: f64,
    w_max: f64,
    phi: f64,
}

/// Hook that snapshots the tracker at geometrically spaced event counts.
struct Trajectory {
    tracker: PotentialTracker,
    events: u64,
    next: u64,
    rows: Vec<Snapshot>,
}

impl Trajectory {
    fn new() -> Self {
        Trajectory {
            tracker: PotentialTracker::default(),
            events: 0,
            next: 1,
            rows: Vec::new(),
        }
    }

    fn tick(&mut self, slot: Slot) {
        self.events += 1;
        if self.events >= self.next {
            self.next = (self.next as f64 * 1.6).ceil() as u64;
            self.rows.push(Snapshot {
                slot,
                backlog: self.tracker.packets(),
                contention: self.tracker.contention(),
                w_max: self.tracker.w_max().unwrap_or(0.0),
                phi: self.tracker.phi(),
            });
        }
    }
}

impl Hooks<LowSensing> for Trajectory {
    fn on_inject(&mut self, t: Slot, id: PacketId, state: &LowSensing) {
        self.tracker.on_inject(t, id, state);
    }
    fn on_depart(&mut self, t: Slot, id: PacketId, state: &LowSensing) {
        self.tracker.on_depart(t, id, state);
    }
    fn on_observe(&mut self, t: Slot, id: PacketId, before: &LowSensing, after: &LowSensing) {
        self.tracker.on_observe(t, id, before, after);
    }
    fn on_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        self.tracker.on_slot(t, outcome);
        self.tick(t);
    }
    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.tracker.on_gap(from, to, jammed);
        self.events += (to - from).saturating_sub(1);
        self.tick(to - 1);
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 13);
    let mut traj = Trajectory::new();
    let result = scenarios::batch_drain(n)
        .seed(7)
        .run_sparse_hooked(lsb(), &mut traj);

    let mut table =
        Table::new("F4", format!("batch-of-{n} herd trajectory (single run)")).columns([
            "slot",
            "backlog",
            "contention",
            "w_max",
            "Φ",
            "w_max/(Φ·ln²Φ)",
        ]);
    let mut bound_ok = true;
    for s in &traj.rows {
        let bound = if s.phi > 3.0 {
            s.w_max / (s.phi * s.phi.ln().powi(2))
        } else {
            0.0
        };
        bound_ok &= bound < 10.0;
        table.row(vec![
            Cell::UInt(s.slot),
            Cell::UInt(s.backlog),
            Cell::Float(s.contention, 3),
            Cell::Float(s.w_max, 0),
            Cell::Float(s.phi, 1),
            Cell::Float(bound, 3),
        ]);
    }
    let occ = traj.tracker.occupancy();
    let total = occ.total().max(1);
    table.note(format!(
        "regime occupancy: low {:.1}%, good {:.1}%, high {:.1}% of {} active slots \
         (throughput {:.3})",
        100.0 * occ.low as f64 / total as f64,
        100.0 * occ.good as f64 / total as f64,
        100.0 * occ.high as f64 / total as f64,
        total,
        result.totals.throughput(),
    ));
    table.note(format!(
        "paper (§4.4): w_max = O(Φ·ln²Φ) throughout — ratio column bounded: {}",
        if bound_ok { "yes" } else { "NO" }
    ));
    table.note(
        "trajectory shape: contention collapses from N/w_min toward Θ(1); Φ then decays \
         ~linearly to 0 (constant drift per slot, Thm 5.18)",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_reaches_drain_and_contention_settles() {
        let t = &run(Scale::Quick)[0];
        assert!(t.rows.len() > 5);
        // Final snapshot has small backlog; some middle snapshot has
        // contention within an order of magnitude of the good regime.
        let contentions: Vec<f64> = t
            .rows
            .iter()
            .map(|r| match r[2] {
                Cell::Float(c, _) => c,
                _ => panic!("expected float"),
            })
            .collect();
        let first = contentions[0];
        let min = contentions.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            min < first / 10.0,
            "contention never collapsed: start {first}, min {min}"
        );
    }
}
