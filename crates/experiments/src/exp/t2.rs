//! T2 — Overall throughput vs batch size, against every baseline
//! (Corollary 1.4 + the §1 claim that BEB is `O(1/ln N)`).
//!
//! One row per batch size `N`; one column per protocol, giving the overall
//! throughput `N/S` (mean over seeds). The paper's story:
//!
//! * `LOW-SENSING BACKOFF` and the every-slot-listening MWU stay `Θ(1)`;
//! * both exponential-backoff variants and polynomial backoff decay with
//!   `N` (the `O(1/ln N)` ceiling of \[23\]);
//! * genie ALOHA (`p = 1/N`) starts near `1/e` per slot early on but wastes
//!   its tail, so its *overall* throughput also degrades — it is a
//!   reference, not a contender.
//!
//! Since the campaign layer landed this is the ported face-off sweep: the
//! grid (batch sizes × protocols × seeds) is a [`campaigns::faceoff_spec`]
//! executed on the deterministic shard pool, one cell per table entry —
//! the bespoke per-protocol `monte_carlo` loops are gone.

use crate::campaigns;
use crate::common::pow2_sweep;
use crate::runner::Scale;
use crate::table::{Cell, Table};
use lowsense::theory;

/// The campaign seed T2 sweeps under (fixed so the table reproduces).
const T2_SEED: u64 = 0x7_2;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(10, 15));
    let spec = campaigns::faceoff_spec(&ns, scale.seeds() as u32, T2_SEED);
    let result = spec.run();

    let mut table = Table::new("T2", "overall throughput N/S on batch arrivals").columns([
        "N",
        "low-sensing",
        "beb-window",
        "beb-prob",
        "poly(k=2)",
        "aloha-genie",
        "cjp-mwu",
    ]);

    let tp = |s_idx: usize, p_idx: usize| result.cell(s_idx, p_idx).stats.throughput.mean();
    for (i, &n) in ns.iter().enumerate() {
        table.row(vec![
            Cell::UInt(n),
            Cell::Float(tp(i, 0), 3),
            Cell::Float(tp(i, 1), 3),
            Cell::Float(tp(i, 2), 3),
            Cell::Float(tp(i, 3), 3),
            Cell::Float(tp(i, 4), 3),
            Cell::Float(tp(i, 5), 3),
        ]);
    }

    let first = ns[0];
    let last = *ns.last().expect("non-empty sweep");
    table.note(format!(
        "paper: Cor 1.4 — low-sensing throughput Θ(1); measured {:.3} → {:.3} across the sweep \
         (flat = reproduced)",
        tp(0, 0),
        tp(ns.len() - 1, 0)
    ));
    table.note(format!(
        "paper (§1, [23]): BEB is O(1/ln N); envelope 1/ln N = {:.3} → {:.3}; measured windowed \
         BEB {:.3} → {:.3} (decaying = reproduced)",
        theory::beb_throughput_envelope(first),
        theory::beb_throughput_envelope(last),
        tp(0, 1),
        tp(ns.len() - 1, 1)
    ));
    table.note("aloha-genie knows N (unrealizable); early success rate ≈ 1/e, overall decays from tail waste");
    table.note(format!(
        "campaign \"{}\" seed {}: {} cells × {} replicates on the deterministic shard pool",
        result.name,
        result.seed,
        result.cells.len(),
        result.replicates
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_the_separation() {
        let t = &run(Scale::Quick)[0];
        // LSB flat-ish, BEB decaying: compare first and last rows.
        let get = |row: &Vec<Cell>, idx: usize| match row[idx] {
            Cell::Float(v, _) => v,
            _ => panic!("expected float"),
        };
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        let lsb_drop = get(first, 1) - get(last, 1);
        let beb_drop = get(first, 2) - get(last, 2);
        assert!(
            beb_drop > lsb_drop,
            "BEB should degrade faster: lsb {lsb_drop}, beb {beb_drop}"
        );
        assert!(get(last, 1) > 0.08, "LSB stays constant");
    }
}
