//! T2 — Overall throughput vs batch size, against every baseline
//! (Corollary 1.4 + the §1 claim that BEB is `O(1/ln N)`).
//!
//! One row per batch size `N`; one column per protocol, giving the overall
//! throughput `N/S` (mean over seeds). The paper's story:
//!
//! * `LOW-SENSING BACKOFF` and the every-slot-listening MWU stay `Θ(1)`;
//! * both exponential-backoff variants and polynomial backoff decay with
//!   `N` (the `O(1/ln N)` ceiling of \[23\]);
//! * genie ALOHA (`p = 1/N`) starts near `1/e` per slot early on but wastes
//!   its tail, so its *overall* throughput also degrades — it is a
//!   reference, not a contender.

use crate::common::{batch_totals as batch, lsb, mean, pow2_sweep};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};
use lowsense::theory;
use lowsense_baselines::{
    CjpConfig, CjpMwu, PolynomialBackoff, ProbBeb, SlottedAloha, WindowedBeb,
};

fn tp_lsb(n: u64, seed: u64) -> f64 {
    batch(n, seed).run_sparse(lsb()).totals.throughput()
}

fn tp_beb(n: u64, seed: u64) -> f64 {
    batch(n, seed)
        .run_sparse(|rng| WindowedBeb::new(2, 40, rng))
        .totals
        .throughput()
}

fn tp_prob_beb(n: u64, seed: u64) -> f64 {
    batch(n, seed)
        .run_sparse(|_| ProbBeb::new(0.5))
        .totals
        .throughput()
}

fn tp_poly(n: u64, seed: u64) -> f64 {
    batch(n, seed)
        .run_sparse(|rng| PolynomialBackoff::new(2, 2, rng))
        .totals
        .throughput()
}

fn tp_aloha(n: u64, seed: u64) -> f64 {
    batch(n, seed)
        .run_sparse(|_| SlottedAloha::genie(n))
        .totals
        .throughput()
}

fn tp_cjp(n: u64, seed: u64) -> f64 {
    batch(n, seed)
        .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        .totals
        .throughput()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(10, 15));
    let mut table = Table::new("T2", "overall throughput N/S on batch arrivals").columns([
        "N",
        "low-sensing",
        "beb-window",
        "beb-prob",
        "poly(k=2)",
        "aloha-genie",
        "cjp-mwu",
    ]);

    let mut lsb_series = Vec::new();
    let mut beb_series = Vec::new();
    for &n in &ns {
        let lsb = mean(monte_carlo(n, scale.seeds(), |s| tp_lsb(n, s)));
        let beb = mean(monte_carlo(n + 1, scale.seeds(), |s| tp_beb(n, s)));
        let pbeb = mean(monte_carlo(n + 2, scale.seeds(), |s| tp_prob_beb(n, s)));
        let poly = mean(monte_carlo(n + 3, scale.seeds(), |s| tp_poly(n, s)));
        let aloha = mean(monte_carlo(n + 4, scale.seeds(), |s| tp_aloha(n, s)));
        let cjp = mean(monte_carlo(n + 5, scale.seeds(), |s| tp_cjp(n, s)));
        lsb_series.push(lsb);
        beb_series.push(beb);
        table.row(vec![
            Cell::UInt(n),
            Cell::Float(lsb, 3),
            Cell::Float(beb, 3),
            Cell::Float(pbeb, 3),
            Cell::Float(poly, 3),
            Cell::Float(aloha, 3),
            Cell::Float(cjp, 3),
        ]);
    }

    let first = ns[0];
    let last = *ns.last().expect("non-empty sweep");
    table.note(format!(
        "paper: Cor 1.4 — low-sensing throughput Θ(1); measured {:.3} → {:.3} across the sweep \
         (flat = reproduced)",
        lsb_series[0],
        lsb_series.last().unwrap()
    ));
    table.note(format!(
        "paper (§1, [23]): BEB is O(1/ln N); envelope 1/ln N = {:.3} → {:.3}; measured windowed \
         BEB {:.3} → {:.3} (decaying = reproduced)",
        theory::beb_throughput_envelope(first),
        theory::beb_throughput_envelope(last),
        beb_series[0],
        beb_series.last().unwrap()
    ));
    table.note("aloha-genie knows N (unrealizable); early success rate ≈ 1/e, overall decays from tail waste");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_the_separation() {
        let t = &run(Scale::Quick)[0];
        // LSB flat-ish, BEB decaying: compare first and last rows.
        let get = |row: &Vec<Cell>, idx: usize| match row[idx] {
            Cell::Float(v, _) => v,
            _ => panic!("expected float"),
        };
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        let lsb_drop = get(first, 1) - get(last, 1);
        let beb_drop = get(first, 2) - get(last, 2);
        assert!(
            beb_drop > lsb_drop,
            "BEB should degrade faster: lsb {lsb_drop}, beb {beb_drop}"
        );
        assert!(get(last, 1) > 0.08, "LSB stays constant");
    }
}
