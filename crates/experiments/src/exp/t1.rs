//! T1 — Implicit throughput over time (Theorem 1.3 / Corollary 5.21).
//!
//! The paper: at the t-th active slot, implicit throughput `(N_t+J_t)/S_t`
//! is `Ω(1)` w.h.p. — uniformly over time, for any adaptive arrival/jamming
//! pattern. We trace the metric at log-spaced active-slot checkpoints for
//! five adversarial workloads and report the mean and worst value per
//! checkpoint bucket; the reproduction succeeds if the minimum across the
//! entire trace stays bounded away from 0.

use std::collections::BTreeMap;

use lowsense_sim::arrivals::Placement;
use lowsense_sim::jamming::WindowPrefixJam;
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::scenarios;

use crate::common::run_lsb;
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

type WorkloadFn = Box<dyn Fn(u64) -> RunResult + Sync + Send>;

const SERIES: f64 = 1.6;

fn workloads(n: u64) -> Vec<(&'static str, WorkloadFn)> {
    vec![
        (
            "batch",
            Box::new(move |seed| run_lsb(&scenarios::batch_drain(n).series(SERIES).seed(seed))),
        ),
        (
            "batch+jam(.15)",
            Box::new(move |seed| {
                run_lsb(
                    &scenarios::random_jam_batch(n, 0.15)
                        .series(SERIES)
                        .seed(seed),
                )
            }),
        ),
        (
            "bernoulli(.05)",
            Box::new(move |seed| {
                run_lsb(
                    &scenarios::bernoulli_stream(0.05, n)
                        .series(SERIES)
                        .seed(seed),
                )
            }),
        ),
        (
            "queuing(.10,S=256)",
            Box::new(move |seed| {
                run_lsb(
                    &scenarios::adversarial_queuing_total(0.10, 256, Placement::Front, n)
                        .series(SERIES)
                        .seed(seed),
                )
            }),
        ),
        (
            "queuing+winjam",
            Box::new(move |seed| {
                run_lsb(
                    &scenarios::adversarial_queuing_total(0.08, 256, Placement::Front, n)
                        .jammer(WindowPrefixJam::new(0.05, 256))
                        .series(SERIES)
                        .seed(seed),
                )
            }),
        ),
    ]
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 14);
    let mut table = Table::new(
        "T1",
        format!("implicit throughput (N_t+J_t)/S_t at the t-th active slot, N={n}"),
    )
    .columns(["workload", "active_slots≈", "mean", "min"]);

    let mut global_min = f64::INFINITY;
    for (wi, (name, work)) in workloads(n).into_iter().enumerate() {
        let runs = monte_carlo(1000 + wi as u64, scale.seeds(), work);
        // Bucket checkpoints by log2(active slots) across seeds.
        let mut buckets: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for r in &runs {
            for p in &r.series {
                let b = 63 - p.active_slots.max(1).leading_zeros();
                buckets.entry(b).or_default().push(p.implicit_throughput());
            }
            // Final point (the overall throughput once drained).
            let b = 63 - r.totals.active_slots.max(1).leading_zeros();
            buckets
                .entry(b)
                .or_default()
                .push(r.totals.implicit_throughput());
        }
        for (b, vals) in &buckets {
            if *b < 3 {
                continue; // skip the tiny-prefix noise (< 8 active slots)
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let min = vals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            global_min = global_min.min(min);
            table.row(vec![
                Cell::text(name),
                Cell::UInt(1u64 << b),
                Cell::Float(mean, 3),
                Cell::Float(min, 3),
            ]);
        }
    }
    table.note(
        "paper: Theorem 1.3 — implicit throughput is Ω(1) at every active slot, \
         for every adaptive arrival/jam pattern",
    );
    table.note(format!(
        "measured: min over all workloads/checkpoints (≥ 8 active slots) = {global_min:.3}; \
         reproduction holds iff this is bounded away from 0"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_positive_floor() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.rows.len() > 10);
        // Every min cell is strictly positive.
        for row in &t.rows {
            if let Cell::Float(min, _) = row[3] {
                assert!(min > 0.0, "implicit throughput hit zero");
            }
        }
    }
}
