//! T1 — Implicit throughput over time (Theorem 1.3 / Corollary 5.21).
//!
//! The paper: at the t-th active slot, implicit throughput `(N_t+J_t)/S_t`
//! is `Ω(1)` w.h.p. — uniformly over time, for any adaptive arrival/jamming
//! pattern. Each run traces the metric at log-spaced active-slot
//! checkpoints; the per-run *floor* over that trace (plus the final
//! totals) folds into the campaign's custom metrics, and the reproduction
//! succeeds if the worst floor across every workload and seed stays
//! bounded away from 0.
//!
//! Ported off the bespoke `monte_carlo`-per-workload loop onto a
//! [`CampaignSpec`]: the five adversarial workloads are the scenario axis,
//! seeds are campaign replicates (derived per cell — no hand-rolled seed
//! spreading), and the trace floor rides along as a declared metric
//! instead of post-hoc bucket surgery.

use lowsense::{LowSensing, Params};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::arrivals::Placement;
use lowsense_sim::jamming::WindowPrefixJam;
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::scenarios;

use crate::runner::Scale;
use crate::table::{Cell, Table};

const SERIES: f64 = 1.6;

/// A run's implicit-throughput floor: the minimum over its log-spaced
/// checkpoints (ignoring the tiny prefix below 8 active slots, where one
/// collision swings the ratio) and its final totals.
fn implicit_floor(r: &RunResult) -> f64 {
    let mut min = r.totals.implicit_throughput();
    for p in &r.series {
        if p.active_slots >= 8 {
            min = min.min(p.implicit_throughput());
        }
    }
    min
}

/// The T1 sweep as a campaign: five adversarial workloads × LSB, with the
/// per-run trace floor and final throughput as declared metrics.
///
/// Workload labels, in axis order: batch, jammed batch (ρ=0.15),
/// Bernoulli stream, adversarial queuing, adversarial queuing under a
/// window-prefix jammer.
pub fn implicit_spec(n: u64, replicates: u32, seed: u64) -> CampaignSpec {
    CampaignSpec::new("t1_implicit")
        .seed(seed)
        .replicates(replicates)
        .scenario(
            ScenarioPoint::new(scenarios::batch_drain(n).series(SERIES).boxed())
                .knob("n", n as f64),
        )
        .scenario(
            ScenarioPoint::new(scenarios::random_jam_batch(n, 0.15).series(SERIES).boxed())
                .knob("n", n as f64)
                .knob("rho", 0.15),
        )
        .scenario(
            ScenarioPoint::new(scenarios::bernoulli_stream(0.05, n).series(SERIES).boxed())
                .knob("rate", 0.05),
        )
        .scenario(
            ScenarioPoint::new(
                scenarios::adversarial_queuing_total(0.10, 256, Placement::Front, n)
                    .series(SERIES)
                    .boxed(),
            )
            .knob("lambda", 0.10),
        )
        .scenario(
            ScenarioPoint::new(
                scenarios::adversarial_queuing_total(0.08, 256, Placement::Front, n)
                    .jammer(WindowPrefixJam::new(0.05, 256))
                    .series(SERIES)
                    .boxed(),
            )
            .knob("lambda", 0.08)
            .knob("jam", 0.05),
        )
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
        .metric("implicit_floor", implicit_floor)
        .metric("final_implicit", |r| r.totals.implicit_throughput())
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 14);
    let result = implicit_spec(n, scale.seeds() as u32, 1000).run();
    let mut table = Table::new(
        "T1",
        format!("implicit throughput (N_t+J_t)/S_t floor over log-spaced checkpoints, N={n}"),
    )
    .columns(["workload", "runs", "floor.mean", "floor.min", "final.mean"]);

    let mut global_min = f64::INFINITY;
    for cell in &result.cells {
        let floor = cell
            .stats
            .metric("implicit_floor")
            .expect("declared metric")
            .summary();
        let fin = cell
            .stats
            .metric("final_implicit")
            .expect("declared metric")
            .summary();
        global_min = global_min.min(floor.min);
        table.row(vec![
            Cell::text(cell.scenario.clone()),
            Cell::UInt(cell.stats.runs),
            Cell::Float(floor.mean, 3),
            Cell::Float(floor.min, 3),
            Cell::Float(fin.mean, 3),
        ]);
    }
    table.note(
        "paper: Theorem 1.3 — implicit throughput is Ω(1) at every active slot, \
         for every adaptive arrival/jam pattern",
    );
    table.note(format!(
        "measured: worst per-run floor over all workloads/seeds (≥ 8 active slots) \
         = {global_min:.3}; reproduction holds iff this is bounded away from 0"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_positive_floor() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 5, "one row per workload");
        // Every floor.min cell is strictly positive.
        for row in &t.rows {
            if let Cell::Float(min, _) = row[3] {
                assert!(min > 0.0, "implicit throughput hit zero");
            }
        }
    }

    #[test]
    fn spec_is_shard_invariant() {
        // The ported sweep inherits the campaign determinism contract.
        let spec = implicit_spec(256, 2, 5);
        assert_eq!(spec.cell_count(), 5);
        let oracle = spec.run_serial();
        assert_eq!(spec.run_sharded(3), oracle);
        // The trace floor actually folded (runs × 1 sample each).
        let w = oracle.cells[0]
            .stats
            .metric("implicit_floor")
            .expect("declared metric");
        assert_eq!(w.count(), 2);
        assert!(w.min() > 0.0);
    }
}
