//! A5 — Sweeping the minimum window `w_min`.
//!
//! `w_min` floors the window: it caps how aggressive a lone back-on packet
//! can get (a solo packet at the floor sends every `~w_min` slots) and sets
//! the contention a fresh batch starts at (`N/w_min`). Small floors speed
//! up the end-game but make fresh bursts noisier; large floors waste the
//! tail. The constraint `c·ln³(w_min) ≥ 1` couples the sweep to `c`, so we
//! pick `c` per point as `max(0.5, 1.05/ln³(w_min))`.

use lowsense::Params;
use lowsense_sim::scenario::scenarios;

use crate::common::{lsb_with, mean, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 13);
    let w_mins: [f64; 6] = [3.0, 4.0, 8.0, 16.0, 64.0, 256.0];
    let mut table = Table::new(
        "A5",
        format!("minimum-window sweep (batch N={n}): floor vs throughput/latency/energy"),
    )
    .columns([
        "w_min",
        "c",
        "throughput",
        "mean_accesses",
        "latency_p99",
        "tail_makespan",
    ]);

    for &w_min in &w_mins {
        let c = (1.05 / w_min.ln().powi(3)).max(0.5);
        let params = Params::new(c, w_min).expect("valid sweep point");
        let results = monte_carlo(200_000 + w_min as u64, scale.seeds(), |seed| {
            scenarios::batch_drain(n)
                .seed(seed)
                .run_sparse(lsb_with(params))
        });
        let tp = mean(results.iter().map(|r| r.totals.throughput()));
        let digest = EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
        let lat_p99 = {
            let mut all: Vec<f64> = results
                .iter()
                .flat_map(|r| r.latencies())
                .map(|x| x as f64)
                .collect();
            all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            lowsense_stats::quantile_sorted(&all, 0.99)
        };
        // "Tail makespan": slots between the second-to-last and last
        // success — the lone-packet end-game w_min dominates.
        let tail = mean(results.iter().map(|r| {
            let mut departs: Vec<u64> = r
                .per_packet
                .as_ref()
                .expect("per-packet stats")
                .iter()
                .filter_map(|p| p.departed)
                .collect();
            departs.sort_unstable();
            let k = departs.len();
            if k >= 2 {
                (departs[k - 1] - departs[k - 2]) as f64
            } else {
                0.0
            }
        }));
        table.row(vec![
            Cell::Float(w_min, 0),
            Cell::Float(c, 3),
            Cell::Float(tp, 3),
            Cell::Float(digest.mean, 1),
            Cell::Float(lat_p99, 0),
            Cell::Float(tail, 1),
        ]);
    }

    table.note(
        "ablation: throughput is Θ(1) for every floor. The end-game (tail_makespan) is \
         dominated by the last packet backing on from its mid-run window excursion, not \
         by the floor itself; the floor's own ~w_min sending interval only shows at the \
         largest floors, and the tightest tail belongs to w_min=3, where the c-constraint \
         forces a larger c (faster feedback)",
    );
    table.note(
        "the paper's 'sufficiently large w_min' is again about proof constants; \
         performance is flat across two orders of magnitude of floor",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_floors_keep_constant_throughput() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(tp, _) = row[2] {
                assert!(tp > 0.03, "throughput collapsed: {row:?}");
            }
        }
    }

    #[test]
    fn tails_are_positive_and_within_a_sane_band() {
        // The tail is dominated by the last packet's back-on excursion (see
        // table notes), so it is NOT monotone in w_min; assert it stays in
        // a bounded band instead.
        let t = &run(Scale::Quick)[0];
        let tails: Vec<f64> = t
            .rows
            .iter()
            .map(|row| match row[5] {
                Cell::Float(v, _) => v,
                _ => panic!("float"),
            })
            .collect();
        assert!(tails.iter().all(|&x| x > 0.0), "degenerate tail: {tails:?}");
        let spread = tails.iter().cloned().fold(0.0f64, f64::max)
            / tails.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 50.0, "tail spread {spread} out of band: {tails:?}");
    }
}
