//! A3 — Gentle vs blunt multiplicative updates.
//!
//! The paper's update factor `1 + 1/(c·ln w)` vanishes as `w` grows. The
//! obvious simplification — double/halve like classical backoff — interacts
//! badly with rare listening: each observation moves the window a constant
//! factor, so a few unlucky observations swing the send probability by
//! orders of magnitude, and the 'herd' overshoots in both directions. We
//! compare the paper's rule against constant factors under jamming.

use lowsense_baselines::{LowSensingVariant, UpdateRule, VariantConfig};
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 13);
    let rules: Vec<(&str, UpdateRule)> = vec![
        ("gentle 1+1/(c·ln w)", UpdateRule::Gentle),
        ("factor 1.5", UpdateRule::Factor(1.5)),
        ("factor 2.0", UpdateRule::Factor(2.0)),
        ("factor 4.0", UpdateRule::Factor(4.0)),
    ];
    let mut table = Table::new(
        "A3",
        format!("window update rule (batch N={n}): gentle vs constant factor"),
    )
    .columns([
        "rule",
        "jam",
        "throughput",
        "mean_accesses",
        "max_accesses",
        "latency_p99",
    ]);

    for (ri, (name, rule)) in rules.iter().enumerate() {
        let cfg = VariantConfig {
            update: *rule,
            ..VariantConfig::paper(0.5, 4.0)
        };
        for jam in [false, true] {
            let results = monte_carlo(
                160_000 + ri as u64 * 10 + jam as u64,
                scale.seeds(),
                |seed| {
                    if jam {
                        scenarios::random_jam_batch(n, 0.15)
                            .seed(seed)
                            .run_sparse(|_| LowSensingVariant::new(cfg))
                    } else {
                        scenarios::batch_drain(n)
                            .seed(seed)
                            .run_sparse(|_| LowSensingVariant::new(cfg))
                    }
                },
            );
            let tp = mean(results.iter().map(|r| r.totals.throughput()));
            let digest =
                EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
            let lat_p99 = {
                let mut all: Vec<u64> = results.iter().flat_map(|r| r.latencies()).collect();
                if all.is_empty() {
                    0.0
                } else {
                    all.sort_unstable();
                    lowsense_stats::quantile_sorted(
                        &all.iter().map(|&x| x as f64).collect::<Vec<_>>(),
                        0.99,
                    )
                }
            };
            table.row(vec![
                Cell::text(*name),
                Cell::text(if jam { "ρ=0.15" } else { "none" }),
                Cell::Float(tp, 3),
                Cell::Float(digest.mean, 1),
                Cell::Float(digest.max, 0),
                Cell::Float(lat_p99, 0),
            ]);
        }
    }

    table.note(
        "ablation: blunt factors keep rough throughput on clean channels but degrade \
         latency tails and energy under jamming — the gentle factor is what makes each \
         observation's damage O(1/ln³w) of potential (Lemma 5.9)",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_drains() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(tp, _) = row[2] {
                assert!(tp > 0.02, "throughput collapsed: {row:?}");
            }
        }
    }
}
