//! A2 — The listening exponent `ln^k(w)`.
//!
//! Why does the paper listen with probability `c·ln³(w)/w` rather than
//! `c/w`? The cube keeps the *conditional* send probability
//! `1/(c·ln^k w)` large enough that long listen streaks imply success
//! (energy, Thm 5.25) while making each window update worth `Θ(1/ln³ w)`
//! of `H(t)` (progress, Lemma 5.9). We sweep `k = 0..3` with the rest of
//! the algorithm fixed and measure what breaks.

use lowsense_baselines::{LowSensingVariant, VariantConfig};
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 13);
    let mut table = Table::new(
        "A2",
        format!("listening exponent k in p_listen = c·ln^k(w)/w (batch N={n}, c=1)"),
    )
    .columns([
        "k",
        "jam",
        "throughput",
        "mean_accesses",
        "p99_accesses",
        "max_accesses",
    ]);

    for k in 0..=3i32 {
        // c = 1 keeps the coupled conditional probability ≤ 1 for every k
        // at w_min = 4 (1/(c·ln^k 4) ≤ 1 ⇔ c·ln^k(4) ≥ 1; ln 4 ≈ 1.39).
        let cfg = VariantConfig {
            listen_exponent: k,
            ..VariantConfig::paper(1.0, 4.0)
        };
        for jam in [false, true] {
            let results = monte_carlo(
                150_000 + k as u64 * 10 + jam as u64,
                scale.seeds(),
                |seed| {
                    if jam {
                        scenarios::random_jam_batch(n, 0.1)
                            .seed(seed)
                            .run_sparse(|_| LowSensingVariant::new(cfg))
                    } else {
                        scenarios::batch_drain(n)
                            .seed(seed)
                            .run_sparse(|_| LowSensingVariant::new(cfg))
                    }
                },
            );
            let tp = mean(results.iter().map(|r| r.totals.throughput()));
            let digest =
                EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
            table.row(vec![
                Cell::UInt(k as u64),
                Cell::text(if jam { "ρ=0.1" } else { "none" }),
                Cell::Float(tp, 3),
                Cell::Float(digest.mean, 1),
                Cell::Float(digest.p99, 0),
                Cell::Float(digest.max, 0),
            ]);
        }
    }

    table.note(
        "ablation: smaller k listens less per slot — cheaper mean energy — but the \
         feedback loop gets slower and the access *tail* (p99/max) fattens: packets \
         stuck at large windows listen so rarely they take long to back on",
    );
    table.note("the paper's k=3 buys tail control (w.h.p. bounds) at modest mean cost");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_exponents_still_drain_with_constant_throughput() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(tp, _) = row[2] {
                assert!(tp > 0.05, "throughput collapsed at {row:?}");
            }
        }
    }
}
