//! T8 — Reactive adversary + adversarial queuing (Theorem 1.9(2) / 5.28).
//!
//! Adversarial-queuing arrivals with a reactive denial-of-service jammer
//! that blocks every transmission until its per-run budget is spent. The
//! paper: any packet accesses the channel at most `O(S)` times w.h.p., and
//! the *average per slot* stays `O(polylog S)`. We sweep `S` and report
//! both normalizations.

use lowsense::theory;
use lowsense_sim::arrivals::Placement;
use lowsense_sim::jamming::ReactiveAny;
use lowsense_sim::scenario::scenarios;

use crate::common::run_lsb;
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ss: Vec<u64> = (6..=scale.pick(9, 12)).map(|k| 1u64 << k).collect();
    let windows: u64 = scale.pick(60, 120);
    let mut table = Table::new(
        "T8",
        "reactive DoS + adversarial queuing (λ_arr=0.10, reactive budget 0.05·horizon)",
    )
    .columns([
        "S",
        "packets",
        "max_accesses",
        "max/S",
        "accesses_per_slot",
        "per_slot/ln⁴(S)",
    ]);

    for &s in &ss {
        let horizon = s * windows;
        let results = monte_carlo(80_000 + s, scale.seeds(), |seed| {
            run_lsb(
                &scenarios::adversarial_queuing(0.10, s, Placement::Front)
                    .jammer(ReactiveAny::new(horizon / 20))
                    .until_slot(horizon)
                    .seed(seed),
            )
        });
        let packets = results.iter().map(|r| r.totals.arrivals).sum::<u64>() / results.len() as u64;
        let max = results
            .iter()
            .flat_map(|r| r.access_counts())
            .max()
            .unwrap_or(0) as f64;
        let per_slot = crate::common::mean(
            results
                .iter()
                .map(|r| r.totals.accesses() as f64 / r.totals.active_slots.max(1) as f64),
        );
        table.row(vec![
            Cell::UInt(s),
            Cell::UInt(packets),
            Cell::Float(max, 0),
            Cell::Float(max / s as f64, 3),
            Cell::Float(per_slot, 3),
            Cell::Float(per_slot / theory::polylog(s as f64, 4), 5),
        ]);
    }

    table.note(
        "paper: Thm 1.9(2) — max per-packet accesses O(S); average accesses per slot \
         O(polylog S)",
    );
    table.note("measured: max/S stays O(1); per-slot average is far below the ln⁴(S) envelope");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_accesses_linear_in_s_at_most() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[3] {
                assert!(ratio < 20.0, "max accesses / S = {ratio} looks unbounded");
            }
        }
    }
}
