//! T7 — Energy against a reactive adversary, finite streams
//! (Theorem 1.9(1) / 5.26).
//!
//! A reactive adversary sees the current slot's transmissions and jams
//! exactly the slots where its *target* sends. The paper: no per-packet
//! bound better than `O((J+1)·polylog N)` is possible for the target, but
//! the **average** stays `O((J/N+1)·polylog(N+J))` — the targeted packet
//! pays, the population does not. We fix a batch of `N`, give the jammer a
//! budget `J` of targeted jams, and report the target's accesses versus the
//! population average.

use lowsense::theory;
use lowsense_sim::jamming::ReactiveTargeted;
use lowsense_sim::packet::PacketId;
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, run_lsb};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 12);
    let budgets: Vec<u64> = vec![0, 4, 16, 64, 256];
    let mut table = Table::new(
        "T7",
        format!("reactive targeted jamming, batch N={n}: target vs population energy"),
    )
    .columns([
        "J(budget)",
        "target_accesses",
        "target/(J+1)ln³N",
        "avg_accesses",
        "avg/ln⁴(N+J)",
        "max_accesses",
    ]);

    for &j in &budgets {
        let results = monte_carlo(70_000 + j, scale.seeds(), |seed| {
            run_lsb(
                &scenarios::batch_drain(n)
                    .jammer(ReactiveTargeted::new(PacketId(0), j))
                    .seed(seed),
            )
        });
        let target = mean(
            results
                .iter()
                .map(|r| r.per_packet.as_ref().expect("per-packet stats")[0].accesses() as f64),
        );
        let avgs: Vec<f64> = results
            .iter()
            .map(|r| {
                let counts = r.access_counts();
                counts.iter().sum::<u64>() as f64 / counts.len() as f64
            })
            .collect();
        let max = results
            .iter()
            .flat_map(|r| r.access_counts())
            .max()
            .unwrap_or(0) as f64;
        let target_bound = (j + 1) as f64 * theory::polylog(n as f64, 3);
        let avg_bound = theory::energy_bound_reactive_avg(n, j);
        table.row(vec![
            Cell::UInt(j),
            Cell::Float(target, 1),
            Cell::Float(target / target_bound, 4),
            Cell::Float(mean(avgs), 1),
            Cell::Float(
                mean(results.iter().map(|r| {
                    let counts = r.access_counts();
                    counts.iter().sum::<u64>() as f64 / counts.len() as f64
                })) / avg_bound,
                4,
            ),
            Cell::Float(max, 0),
        ]);
    }

    table.note(
        "paper: Thm 1.9(1) — target pays O((J+1)·polylog N) accesses; the average stays \
         O((J/N+1)·polylog(N+J))",
    );
    table.note(
        "measured: target grows with J while the population average barely moves; \
         both normalized columns stay O(1)",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_average_is_insensitive_to_targeted_jams() {
        let t = &run(Scale::Quick)[0];
        let avg = |row: &Vec<Cell>| match row[3] {
            Cell::Float(v, _) => v,
            _ => panic!("expected float"),
        };
        let first = avg(&t.rows[0]);
        let last = avg(t.rows.last().unwrap());
        assert!(
            last < first * 2.0,
            "population average exploded: {first} → {last}"
        );
    }
}
