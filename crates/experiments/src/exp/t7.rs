//! T7 — Energy against a reactive adversary, finite streams
//! (Theorem 1.9(1) / 5.26).
//!
//! A reactive adversary sees the current slot's transmissions and jams
//! exactly the slots where its *target* sends. The paper: no per-packet
//! bound better than `O((J+1)·polylog N)` is possible for the target, but
//! the **average** stays `O((J/N+1)·polylog(N+J))` — the targeted packet
//! pays, the population does not. We fix a batch of `N`, give the jammer a
//! budget `J` of targeted jams, and report the target's accesses versus the
//! population average.
//!
//! Ported onto the campaign layer: the jam-budget sweep is the scenario
//! axis, and the target's access count is a declared **custom metric**
//! (`target_accesses`) folded per cell next to the standard accumulators.

use lowsense::theory;
use lowsense::{LowSensing, Params};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::jamming::ReactiveTargeted;
use lowsense_sim::packet::PacketId;
use lowsense_sim::scenario::scenarios;

use crate::runner::Scale;
use crate::table::{Cell, Table};

/// The campaign seed T7 sweeps under.
const T7_SEED: u64 = 0x7_7;

/// The reactive-jamming campaign: batch `n`, one scenario point per jam
/// budget, with the target packet's accesses as a custom metric.
pub fn reactive_spec(n: u64, budgets: &[u64], replicates: u32, seed: u64) -> CampaignSpec {
    CampaignSpec::new("reactive-targeted")
        .seed(seed)
        .replicates(replicates)
        .scenarios(budgets.iter().map(|&j| {
            ScenarioPoint::new(
                scenarios::batch_drain(n)
                    .jammer(ReactiveTargeted::new(PacketId(0), j))
                    .boxed(),
            )
            .labeled(format!("reactive-targeted(n={n},J={j})"))
            .knob("n", n as f64)
            .knob("budget", j as f64)
        }))
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
        .metric("target_accesses", |r| {
            r.per_packet.as_ref().expect("per-packet stats")[0].accesses() as f64
        })
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 12);
    let budgets: Vec<u64> = vec![0, 4, 16, 64, 256];
    let result = reactive_spec(n, &budgets, scale.seeds() as u32, T7_SEED).run();

    let mut table = Table::new(
        "T7",
        format!("reactive targeted jamming, batch N={n}: target vs population energy"),
    )
    .columns([
        "J(budget)",
        "target_accesses",
        "target/(J+1)ln³N",
        "avg_accesses",
        "avg/ln⁴(N+J)",
        "max_accesses",
    ]);

    for (i, &j) in budgets.iter().enumerate() {
        let stats = &result.cell(i, 0).stats;
        let target = stats
            .metric("target_accesses")
            .expect("declared metric")
            .mean();
        let avg = stats.accesses.mean();
        let max = stats.accesses.max();
        let target_bound = (j + 1) as f64 * theory::polylog(n as f64, 3);
        let avg_bound = theory::energy_bound_reactive_avg(n, j);
        table.row(vec![
            Cell::UInt(j),
            Cell::Float(target, 1),
            Cell::Float(target / target_bound, 4),
            Cell::Float(avg, 1),
            Cell::Float(avg / avg_bound, 4),
            Cell::Float(max, 0),
        ]);
    }

    table.note(
        "paper: Thm 1.9(1) — target pays O((J+1)·polylog N) accesses; the average stays \
         O((J/N+1)·polylog(N+J))",
    );
    table.note(
        "measured: target grows with J while the population average barely moves; \
         both normalized columns stay O(1)",
    );
    table.note(
        "campaign port: target column is the `target_accesses` custom metric; population \
         columns come from the pooled per-cell access accumulators",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_average_is_insensitive_to_targeted_jams() {
        let t = &run(Scale::Quick)[0];
        let avg = |row: &Vec<Cell>| match row[3] {
            Cell::Float(v, _) => v,
            _ => panic!("expected float"),
        };
        let first = avg(&t.rows[0]);
        let last = avg(t.rows.last().unwrap());
        assert!(
            last < first * 2.0,
            "population average exploded: {first} → {last}"
        );
    }
}
