//! T9 — Reactive adversary versus exponential backoff (§1.3).
//!
//! The paper's motivating contrast: "for any T a reactive adversary can
//! drive [exponential backoff's] throughput down to O(1/T) by jamming a
//! single packet a mere Θ(ln T) times". Exponential backoff never recovers
//! from a jam — its window only grows — while `LOW-SENSING BACKOFF` backs
//! on after the jamming stops. We give a reactive jammer a budget of `b`
//! targeted jams against a lone packet and measure the delay (active slots
//! until success): BEB's delay doubles per jam (`2^b`), low-sensing's grows
//! only gently.

use lowsense::{LowSensing, Params};
use lowsense_baselines::{ProbBeb, WindowedBeb};
use lowsense_sim::jamming::ReactiveTargeted;
use lowsense_sim::packet::PacketId;
use lowsense_sim::scenario::scenarios;

use crate::common::mean;
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

fn delay_of<P, F>(budget: u64, seed: u64, factory: F) -> f64
where
    P: lowsense_sim::protocol::SparseProtocol,
    F: FnMut(&mut lowsense_sim::rng::SimRng) -> P,
{
    let r = scenarios::batch_drain(1)
        .jammer(ReactiveTargeted::new(PacketId(0), budget))
        .seed(seed)
        .run_sparse(factory);
    debug_assert!(r.drained());
    r.totals.active_slots as f64
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let budgets: Vec<u64> = (1..=scale.pick(10, 16)).collect();
    let mut table = Table::new(
        "T9",
        "reactive jammer, single packet: delay until success vs jam budget b",
    )
    .columns([
        "b(jams)",
        "low-sensing",
        "beb-window",
        "beb-prob",
        "beb/2^b",
        "lsb_vs_beb",
    ]);

    for &b in &budgets {
        let lsb = mean(monte_carlo(90_000 + b, scale.seeds(), |s| {
            delay_of(b, s, |_| LowSensing::new(Params::default()))
        }));
        let beb = mean(monte_carlo(91_000 + b, scale.seeds(), |s| {
            delay_of(b, s, |rng| WindowedBeb::new(2, 40, rng))
        }));
        let pbeb = mean(monte_carlo(92_000 + b, scale.seeds(), |s| {
            delay_of(b, s, |_| ProbBeb::new(0.5))
        }));
        table.row(vec![
            Cell::UInt(b),
            Cell::Float(lsb, 1),
            Cell::Float(beb, 1),
            Cell::Float(pbeb, 1),
            Cell::Float(beb / (1u64 << b.min(62)) as f64, 3),
            Cell::Float(beb / lsb.max(1.0), 1),
        ]);
    }

    table.note(
        "paper (§1.3): Θ(ln T) targeted jams force exponential backoff to Θ(T) delay \
         (throughput O(1/T)); the beb/2^b column being Θ(1) reproduces the exponent",
    );
    table.note(
        "low-sensing recovers after the budget is spent (it backs on in silence), so its \
         delay grows far slower — the lsb_vs_beb ratio explodes with b",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beb_collapses_lsb_survives() {
        let t = &run(Scale::Quick)[0];
        let get = |row: &Vec<Cell>, i: usize| match row[i] {
            Cell::Float(v, _) => v,
            _ => panic!("float expected"),
        };
        let last = t.rows.last().unwrap();
        let (lsb, beb) = (get(last, 1), get(last, 2));
        assert!(
            beb > 5.0 * lsb,
            "expected BEB collapse at high budget: lsb {lsb}, beb {beb}"
        );
    }
}
