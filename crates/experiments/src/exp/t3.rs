//! T3 — Bounded backlog under adversarial queuing (Corollary 1.5).
//!
//! Arrivals follow the adversarial-queuing model: at most `λ·S` packets plus
//! jammed slots per window of `S` slots, placed adversarially (burstiest:
//! all at the window front), with a window-prefix jammer consuming part of
//! the budget. The paper: the backlog at any time is `O(S)` w.h.p. We sweep
//! `S` over two decades and report `max backlog / S` — reproduction holds if
//! the ratio is flat in `S` and `O(1)`.

use lowsense_sim::scenario::scenarios;

use crate::common::{mean, run_lsb};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

const LAMBDA_ARRIVALS: f64 = 0.10;
const LAMBDA_JAM: f64 = 0.05;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ss: Vec<u64> = (6..=scale.pick(9, 13)).map(|k| 1u64 << k).collect();
    let horizon_windows: u64 = scale.pick(100, 200);
    let mut table = Table::new(
        "T3",
        format!(
            "backlog under adversarial queuing (λ_arr={LAMBDA_ARRIVALS}, λ_jam={LAMBDA_JAM}, front placement)"
        ),
    )
    .columns([
        "S",
        "horizon",
        "max_backlog(mean)",
        "max_backlog(worst)",
        "ratio_to_S",
        "final_backlog(mean)",
    ]);

    let mut ratios = Vec::new();
    for &s in &ss {
        let horizon = s * horizon_windows;
        let runs = monte_carlo(30_000 + s, scale.seeds(), |seed| {
            run_lsb(
                &scenarios::queuing_jammed(LAMBDA_ARRIVALS, LAMBDA_JAM, s)
                    .until_slot(horizon)
                    .totals_only()
                    .seed(seed),
            )
        });
        let maxes: Vec<f64> = runs.iter().map(|r| r.totals.max_backlog as f64).collect();
        let finals: Vec<f64> = runs.iter().map(|r| r.totals.backlog() as f64).collect();
        let mean_max = mean(maxes.clone());
        let worst = maxes.iter().fold(0.0f64, |a, &b| a.max(b));
        let ratio = worst / s as f64;
        ratios.push(ratio);
        table.row(vec![
            Cell::UInt(s),
            Cell::UInt(horizon),
            Cell::Float(mean_max, 1),
            Cell::Float(worst, 0),
            Cell::Float(ratio, 3),
            Cell::Float(mean(finals), 1),
        ]);
    }

    let spread = ratios.iter().fold(0.0f64, |a, &b| a.max(b))
        / ratios
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
            .max(1e-9);
    table.note("paper: Cor 1.5 — backlog is O(S) w.h.p. at every slot for sufficiently small λ");
    table.note(format!(
        "measured: worst-case backlog/S stays O(1) across the sweep \
         (max/min ratio of the column = {spread:.2}; flat = reproduced)"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_ratio_is_bounded() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[4] {
                assert!(ratio < 30.0, "backlog/S ratio {ratio} looks unbounded");
            }
        }
    }
}
