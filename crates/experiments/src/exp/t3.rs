//! T3 — Bounded backlog under adversarial queuing (Corollary 1.5).
//!
//! Arrivals follow the adversarial-queuing model: at most `λ·S` packets plus
//! jammed slots per window of `S` slots, placed adversarially (burstiest:
//! all at the window front), with a window-prefix jammer consuming part of
//! the budget. The paper: the backlog at any time is `O(S)` w.h.p. We sweep
//! `S` over two decades and report `max backlog / S` — reproduction holds if
//! the ratio is flat in `S` and `O(1)`.
//!
//! Ported off the bespoke `monte_carlo`-per-granularity loop onto a
//! [`CampaignSpec`] (the `t1` template): the `S` sweep is the scenario
//! axis, seeds are campaign replicates (derived per cell — no hand-rolled
//! seed spreading), and the per-run backlog peaks fold into declared
//! metrics whose `Welford` moments carry the mean *and* the worst case the
//! table reports.

use lowsense::{LowSensing, Params};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::scenario::scenarios;

use crate::runner::Scale;
use crate::table::{Cell, Table};

const LAMBDA_ARRIVALS: f64 = 0.10;
const LAMBDA_JAM: f64 = 0.05;

/// The T3 sweep as a campaign: one adversarial-queuing scenario per window
/// granularity `S`, horizon `S · horizon_windows`, with the per-run peak
/// and final backlogs as declared metrics.
pub fn backlog_spec(ss: &[u64], horizon_windows: u64, replicates: u32, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("t3_backlog")
        .seed(seed)
        .replicates(replicates);
    for &s in ss {
        spec = spec.scenario(
            ScenarioPoint::new(
                scenarios::queuing_jammed(LAMBDA_ARRIVALS, LAMBDA_JAM, s)
                    .until_slot(s * horizon_windows)
                    .totals_only()
                    .boxed(),
            )
            .knob("S", s as f64),
        );
    }
    spec.protocol("low-sensing", |sc, _| {
        sc.run_sparse(|_| LowSensing::new(Params::default()))
    })
    .metric("max_backlog", |r| r.totals.max_backlog as f64)
    .metric("final_backlog", |r| r.totals.backlog() as f64)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ss: Vec<u64> = (6..=scale.pick(9, 13)).map(|k| 1u64 << k).collect();
    let horizon_windows: u64 = scale.pick(100, 200);
    let result = backlog_spec(&ss, horizon_windows, scale.seeds() as u32, 30_000).run();
    let mut table = Table::new(
        "T3",
        format!(
            "backlog under adversarial queuing (λ_arr={LAMBDA_ARRIVALS}, λ_jam={LAMBDA_JAM}, front placement)"
        ),
    )
    .columns([
        "S",
        "horizon",
        "max_backlog(mean)",
        "max_backlog(worst)",
        "ratio_to_S",
        "final_backlog(mean)",
    ]);

    let mut ratios = Vec::new();
    // One cell per granularity, in scenario-axis (= `ss`) order: a single
    // protocol means the cell list and the sweep line up one-to-one.
    for (cell, &s) in result.cells.iter().zip(&ss) {
        let maxb = cell
            .stats
            .metric("max_backlog")
            .expect("declared metric")
            .summary();
        let finb = cell
            .stats
            .metric("final_backlog")
            .expect("declared metric")
            .summary();
        let ratio = maxb.max / s as f64;
        ratios.push(ratio);
        table.row(vec![
            Cell::UInt(s),
            Cell::UInt(s * horizon_windows),
            Cell::Float(maxb.mean, 1),
            Cell::Float(maxb.max, 0),
            Cell::Float(ratio, 3),
            Cell::Float(finb.mean, 1),
        ]);
    }

    let spread = ratios.iter().fold(0.0f64, |a, &b| a.max(b))
        / ratios
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
            .max(1e-9);
    table.note("paper: Cor 1.5 — backlog is O(S) w.h.p. at every slot for sufficiently small λ");
    table.note(format!(
        "measured: worst-case backlog/S stays O(1) across the sweep \
         (max/min ratio of the column = {spread:.2}; flat = reproduced)"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_ratio_is_bounded() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[4] {
                assert!(ratio < 30.0, "backlog/S ratio {ratio} looks unbounded");
            }
        }
    }

    #[test]
    fn spec_is_shard_invariant() {
        // The ported sweep inherits the campaign determinism contract.
        let spec = backlog_spec(&[64, 128], 25, 2, 7);
        assert_eq!(spec.cell_count(), 2);
        let oracle = spec.run_serial();
        assert_eq!(spec.run_sharded(3), oracle);
        // The backlog metrics actually folded (one sample per run).
        let w = oracle.cells[0]
            .stats
            .metric("max_backlog")
            .expect("declared metric");
        assert_eq!(w.count(), 2);
        assert!(w.max() >= w.mean());
        assert!(w.max() > 0.0, "adversarial queuing never built a backlog");
    }
}
