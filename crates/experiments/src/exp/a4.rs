//! A4 — Coupled vs independent send/listen coins.
//!
//! A "subtle design choice" the paper highlights (proof of Thm 5.25): a
//! packet sends only when it has already decided to listen, so every listen
//! carries a `1/(c·ln³ w)` chance of being a send — long listening streaks
//! on a quiet channel force success, which is how the energy argument
//! closes. With independent coins the marginals are identical but the
//! coupling (and its accounting convenience) is gone. We measure whether
//! the behaviour differs in practice.

use lowsense_baselines::{Coupling, LowSensingVariant, VariantConfig};
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 13);
    let mut table = Table::new("A4", format!("send/listen coin coupling (batch N={n})")).columns([
        "coupling",
        "jam",
        "throughput",
        "sends_mean",
        "listens_mean",
        "max_accesses",
    ]);

    for coupling in [Coupling::Coupled, Coupling::Independent] {
        let cfg = VariantConfig {
            coupling,
            ..VariantConfig::paper(0.5, 4.0)
        };
        for jam in [false, true] {
            let results = monte_carlo(
                170_000 + matches!(coupling, Coupling::Independent) as u64 * 10 + jam as u64,
                scale.seeds(),
                |seed| {
                    if jam {
                        scenarios::random_jam_batch(n, 0.1)
                            .seed(seed)
                            .run_sparse(|_| LowSensingVariant::new(cfg))
                    } else {
                        scenarios::batch_drain(n)
                            .seed(seed)
                            .run_sparse(|_| LowSensingVariant::new(cfg))
                    }
                },
            );
            let tp = mean(results.iter().map(|r| r.totals.throughput()));
            let sends = mean(results.iter().map(|r| {
                let ps = r.per_packet.as_ref().expect("per-packet");
                mean(ps.iter().map(|p| p.sends as f64))
            }));
            let listens = mean(results.iter().map(|r| {
                let ps = r.per_packet.as_ref().expect("per-packet");
                mean(ps.iter().map(|p| p.listens as f64))
            }));
            let digest =
                EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
            table.row(vec![
                Cell::text(match coupling {
                    Coupling::Coupled => "coupled (paper)",
                    Coupling::Independent => "independent",
                }),
                Cell::text(if jam { "ρ=0.1" } else { "none" }),
                Cell::Float(tp, 3),
                Cell::Float(sends, 2),
                Cell::Float(listens, 1),
                Cell::Float(digest.max, 0),
            ]);
        }
    }

    table.note(
        "ablation: identical marginals ⇒ near-identical throughput and energy — the \
         coupling is an *analysis* device (it makes 'many listens ⇒ probably sent' \
         literal), not a performance optimization",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn couplings_behave_similarly() {
        let t = &run(Scale::Quick)[0];
        let tp = |row: &Vec<Cell>| match row[2] {
            Cell::Float(v, _) => v,
            _ => panic!("float"),
        };
        // Compare the two no-jam rows.
        let nojam: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| matches!(&r[1], Cell::Text(s) if s == "none"))
            .map(tp)
            .collect();
        assert_eq!(nojam.len(), 2);
        assert!(
            (nojam[0] - nojam[1]).abs() / nojam[0] < 0.3,
            "couplings diverge: {nojam:?}"
        );
    }
}
