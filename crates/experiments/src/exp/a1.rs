//! A1 — Sweeping the constant `c`.
//!
//! The paper asks for "sufficiently large `c`"; practice asks how small it
//! can be. Larger `c` means more listening (the access probability is
//! `c·ln³(w)/w`) and gentler updates (`1 + 1/(c·ln w)`): faster, tighter
//! feedback at higher energy. We sweep `c` on a fixed batch, with and
//! without jamming, and report the throughput/energy trade-off.

use lowsense::Params;
use lowsense_sim::scenario::scenarios;

use crate::common::{lsb_with, mean, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n: u64 = scale.pick(1 << 10, 1 << 13);
    // w_min = 4 requires c ≥ 1/ln³4 ≈ 0.375 for p_send|listen ≤ 1.
    let cs = [0.4, 0.5, 0.75, 1.0, 2.0, 4.0];
    let mut table = Table::new(
        "A1",
        format!("constant-c sweep (batch N={n}, w_min=4): throughput vs energy"),
    )
    .columns([
        "c",
        "jam",
        "throughput",
        "mean_accesses",
        "max_accesses",
        "listen_cap_ok",
    ]);

    for &c in &cs {
        let params = Params::new(c, 4.0).expect("valid sweep point");
        for jam in [false, true] {
            let results = monte_carlo(
                140_000 + (c * 100.0) as u64 + jam as u64,
                scale.seeds(),
                |seed| {
                    if jam {
                        scenarios::random_jam_batch(n, 0.1)
                            .seed(seed)
                            .run_sparse(lsb_with(params))
                    } else {
                        scenarios::batch_drain(n)
                            .seed(seed)
                            .run_sparse(lsb_with(params))
                    }
                },
            );
            let tp = mean(results.iter().map(|r| r.totals.throughput()));
            let digest =
                EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
            table.row(vec![
                Cell::Float(c, 2),
                Cell::text(if jam { "ρ=0.1" } else { "none" }),
                Cell::Float(tp, 3),
                Cell::Float(digest.mean, 1),
                Cell::Float(digest.max, 0),
                Cell::text(if params.respects_listen_cap() {
                    "yes"
                } else {
                    "clamped"
                }),
            ]);
        }
    }

    table.note(
        "ablation: throughput is Θ(1) across the whole c range (the analysis only needs \
         c large enough); energy grows roughly linearly with c — the paper's choice is \
         about constants in the proof, not about performance",
    );
    table.note("c > 0.744 clamps the listen probability near w ≈ e³ (deviation from the idealized algorithm, flagged in the last column)");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_constant_energy_grows_with_c() {
        let t = &run(Scale::Quick)[0];
        let f = |row: &Vec<Cell>, i: usize| match row[i] {
            Cell::Float(v, _) => v,
            _ => panic!("float"),
        };
        // All throughputs positive and same order.
        for row in &t.rows {
            assert!(f(row, 2) > 0.05, "throughput collapsed: {row:?}");
        }
        // Energy at the largest c (no-jam rows) exceeds energy at smallest.
        let nojam: Vec<&Vec<Cell>> = t
            .rows
            .iter()
            .filter(|r| matches!(&r[1], Cell::Text(s) if s == "none"))
            .collect();
        assert!(f(nojam.last().unwrap(), 3) > f(nojam[0], 3));
    }
}
