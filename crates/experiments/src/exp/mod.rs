//! One module per reproduced table/figure; ids match `DESIGN.md` §4 and
//! `EXPERIMENTS.md`.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod t8;
pub mod t9;
pub mod x1;
pub mod x2;
