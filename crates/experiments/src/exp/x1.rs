//! X1 — Fairness (extension; paper §6 open problem).
//!
//! "We note that LOW-SENSING BACKOFF is not guaranteed to be fair; it is
//! possible for some packets to succeed quickly, while others linger" (§6).
//! How unfair is it in practice? We measure per-packet latency dispersion
//! on a batch — Jain's fairness index `(Σl)²/(n·Σl²)` (1 = perfectly fair)
//! and the p99/p50 latency ratio — against the every-slot MWU and windowed
//! BEB baselines.

use lowsense_baselines::{CjpConfig, CjpMwu, WindowedBeb};
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::scenarios;

use crate::common::{mean, run_lsb};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Jain's fairness index of a latency sample: `(Σx)² / (n·Σx²)`.
fn jain(latencies: &[u64]) -> f64 {
    let n = latencies.len() as f64;
    let sum: f64 = latencies.iter().map(|&x| x as f64).sum();
    let sq: f64 = latencies.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (n * sq)
    }
}

/// `(jain index, p99/p50 latency ratio, max latency)` of one run.
type FairnessDigest = (f64, f64, f64);

fn digest(r: &RunResult) -> FairnessDigest {
    let lats = r.latencies();
    let (p50, _, p99, max) = lowsense_stats::tail_summary(&lats);
    (jain(&lats), p99 / p50.max(1.0), max)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns: Vec<u64> = (8..=scale.pick(10, 13)).map(|k| 1u64 << k).collect();
    let mut table = Table::new(
        "X1",
        "fairness of completion latencies on a batch (extension, §6 open problem)",
    )
    .columns([
        "N",
        "protocol",
        "jain_index",
        "p99/p50_latency",
        "max_latency",
    ]);

    for &n in &ns {
        let rows: Vec<(&str, Vec<FairnessDigest>)> = vec![
            (
                "low-sensing",
                monte_carlo(180_000 + n, scale.seeds(), |s| {
                    digest(&run_lsb(&scenarios::protocol_faceoff(n).seed(s)))
                }),
            ),
            (
                "cjp-mwu",
                monte_carlo(181_000 + n, scale.seeds(), |s| {
                    digest(
                        &scenarios::protocol_faceoff(n)
                            .seed(s)
                            .run_grouped(|_| CjpMwu::new(CjpConfig::default())),
                    )
                }),
            ),
            (
                "beb-window",
                monte_carlo(182_000 + n, scale.seeds(), |s| {
                    digest(
                        &scenarios::protocol_faceoff(n)
                            .seed(s)
                            .run_sparse(|rng| WindowedBeb::new(2, 40, rng)),
                    )
                }),
            ),
        ];
        for (name, ds) in rows {
            table.row(vec![
                Cell::UInt(n),
                Cell::text(name),
                Cell::Float(mean(ds.iter().map(|d| d.0)), 3),
                Cell::Float(mean(ds.iter().map(|d| d.1)), 2),
                Cell::Float(ds.iter().map(|d| d.2).fold(0.0, f64::max), 0),
            ]);
        }
    }

    table.note(
        "extension beyond the paper: §6 concedes no fairness guarantee — measured, \
         low-sensing's Jain index is moderate (completion order is roughly uniform in a \
         drained batch, so latencies are near-uniformly spread: Jain ≈ 3/4)",
    );
    table.note(
        "the comparison shows unfairness is a property of contention resolution per se \
         (all three protocols have similar dispersion), not of the slow feedback loop",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_properties() {
        assert!((jain(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12, "equal = fair");
        let skewed = jain(&[1, 1, 1, 1000]);
        assert!(skewed < 0.3, "skew detected: {skewed}");
        assert_eq!(jain(&[0, 0]), 1.0, "degenerate sample");
    }

    #[test]
    fn quick_run_reports_moderate_fairness() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(j, _) = row[2] {
                assert!((0.3..=1.0).contains(&j), "jain {j} out of plausible band");
            }
        }
    }
}
