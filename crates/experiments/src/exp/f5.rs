//! F5 — Batch makespan per packet (`S/N`).
//!
//! Constant throughput (Cor 1.4) is equivalent to `O(N)` makespan for a
//! batch of `N`. We report `makespan/N` across the sweep for low-sensing
//! and the baselines: flat for the constant-throughput algorithms, growing
//! (`Θ(log N)`-style) for the backoff family.

use lowsense_baselines::{CjpConfig, CjpMwu, SlottedAloha, WindowedBeb};

use crate::common::{batch_totals as batch, lsb, mean, pow2_sweep};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns = pow2_sweep(6, scale.pick(10, 14));
    let mut table = Table::new("F5", "batch makespan per packet (active slots / N)").columns([
        "N",
        "low-sensing",
        "beb-window",
        "aloha-genie",
        "cjp-mwu",
    ]);

    let mut lsb_col = Vec::new();
    for &n in &ns {
        let lsb = mean(monte_carlo(120_000 + n, scale.seeds(), |s| {
            batch(n, s).run_sparse(lsb()).totals.active_slots as f64 / n as f64
        }));
        let beb = mean(monte_carlo(121_000 + n, scale.seeds(), |s| {
            batch(n, s)
                .run_sparse(|rng| WindowedBeb::new(2, 40, rng))
                .totals
                .active_slots as f64
                / n as f64
        }));
        let aloha = mean(monte_carlo(122_000 + n, scale.seeds(), |s| {
            batch(n, s)
                .run_sparse(|_| SlottedAloha::genie(n))
                .totals
                .active_slots as f64
                / n as f64
        }));
        let cjp = mean(monte_carlo(123_000 + n, scale.seeds(), |s| {
            batch(n, s)
                .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
                .totals
                .active_slots as f64
                / n as f64
        }));
        lsb_col.push(lsb);
        table.row(vec![
            Cell::UInt(n),
            Cell::Float(lsb, 2),
            Cell::Float(beb, 2),
            Cell::Float(aloha, 2),
            Cell::Float(cjp, 2),
        ]);
    }

    let spread = lsb_col.iter().cloned().fold(0.0f64, f64::max)
        / lsb_col.iter().cloned().fold(f64::INFINITY, f64::min);
    table.note("paper: Θ(1) throughput ⇔ makespan Θ(N) ⇔ this column is flat in N");
    table.note(format!(
        "measured: low-sensing makespan/N varies by only {spread:.2}× across the sweep; \
         beb grows with N (its O(1/ln N) throughput inverted)"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_makespan_per_packet_is_flat() {
        let t = &run(Scale::Quick)[0];
        let col: Vec<f64> = t
            .rows
            .iter()
            .map(|r| match r[1] {
                Cell::Float(v, _) => v,
                _ => panic!("float"),
            })
            .collect();
        let spread = col.iter().cloned().fold(0.0f64, f64::max)
            / col.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 3.0, "makespan/N spread {spread} not flat");
    }
}
