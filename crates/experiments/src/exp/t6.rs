//! T6 — Energy on infinite streams (Theorem 5.29, adaptive case).
//!
//! For an unbounded Bernoulli stream truncated at horizon `t`, every packet
//! that existed before `t` has made `O(ln⁴(N_t + J_t))` accesses. We grow
//! the horizon geometrically and verify the per-packet access distribution
//! grows polylogarithmically in `N_t + J_t` (the paper proves the infinite
//! case exactly by this truncation argument).

use lowsense::theory;
use lowsense_sim::arrivals::Bernoulli;
use lowsense_sim::jamming::RandomJam;
use lowsense_sim::scenario::Scenario;

use crate::common::{run_lsb, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let horizons: Vec<u64> = (12..=scale.pick(15, 18)).map(|k| 1u64 << k).collect();
    let mut table = Table::new(
        "T6",
        "per-packet accesses before horizon t, infinite Bernoulli(0.05) stream + jam(0.02)",
    )
    .columns([
        "horizon",
        "N_t",
        "J_t",
        "mean",
        "p99",
        "max",
        "max/ln⁴(N+J)",
    ]);

    let mut xs = Vec::new();
    let mut maxes = Vec::new();
    for &t_end in &horizons {
        let results = monte_carlo(60_000 + t_end, scale.seeds(), |seed| {
            run_lsb(
                &Scenario::named("infinite-bernoulli+jam")
                    .arrivals(Bernoulli::new(0.05))
                    .jammer(RandomJam::new(0.02))
                    .until_slot(t_end)
                    .seed(seed),
            )
        });
        let n_t = crate::common::mean(results.iter().map(|r| r.totals.arrivals as f64));
        let j_t = crate::common::mean(results.iter().map(|r| r.totals.jammed_active as f64));
        let digest = EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
        let bound = theory::energy_bound_finite(n_t as u64, j_t as u64);
        xs.push(n_t + j_t);
        maxes.push(digest.max);
        table.row(vec![
            Cell::UInt(t_end),
            Cell::Float(n_t, 0),
            Cell::Float(j_t, 0),
            Cell::Float(digest.mean, 1),
            Cell::Float(digest.p99, 0),
            Cell::Float(digest.max, 0),
            Cell::Float(digest.max / bound, 3),
        ]);
    }

    let (beta, _) = lowsense_stats::power_exponent(&xs, &maxes);
    table
        .note("paper: Thm 5.29 — before time t, each packet makes O(ln⁴(N_t+J_t)) accesses w.h.p.");
    table.note(format!(
        "measured: max accesses ~ (N_t+J_t)^{beta:.2} (≪ 1 ⇒ consistent with polylog)"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_stream_energy_bounded() {
        let t = &run(Scale::Quick)[0];
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[6] {
                assert!(ratio < 3.0, "ratio {ratio}");
            }
        }
    }
}
