//! T5 — Energy under adversarial queuing (Theorem 5.27).
//!
//! With adversarial-queuing arrivals (rate `λ`, granularity `S`) and an
//! adaptive (non-reactive) window-prefix jammer, each packet accesses the
//! channel `O(ln⁴ S)` times w.h.p. — independent of how long the stream
//! runs. We sweep `S`, run a fixed number of windows, and check that the
//! per-packet access distribution grows only polylogarithmically in `S`.

use lowsense::theory;
use lowsense_sim::scenario::scenarios;

use crate::common::{run_lsb, EnergyDigest};
use crate::runner::{monte_carlo, Scale};
use crate::table::{Cell, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let ss: Vec<u64> = (6..=scale.pick(9, 12)).map(|k| 1u64 << k).collect();
    let windows: u64 = scale.pick(60, 150);
    let mut table = Table::new(
        "T5",
        "per-packet accesses under adversarial queuing (λ_arr=0.10, λ_jam=0.05)",
    )
    .columns(["S", "packets", "mean", "p99", "max", "max/ln⁴(S)"]);

    let mut xs = Vec::new();
    let mut maxes = Vec::new();
    for &s in &ss {
        let results = monte_carlo(50_000 + s, scale.seeds(), |seed| {
            run_lsb(
                &scenarios::queuing_jammed(0.10, 0.05, s)
                    .until_slot(s * windows)
                    .seed(seed),
            )
        });
        let packets = results.iter().map(|r| r.totals.arrivals).sum::<u64>() / results.len() as u64;
        let digest = EnergyDigest::pool(&results.iter().map(EnergyDigest::of).collect::<Vec<_>>());
        let bound = theory::polylog(s as f64, 4);
        xs.push(s as f64);
        maxes.push(digest.max);
        table.row(vec![
            Cell::UInt(s),
            Cell::UInt(packets),
            Cell::Float(digest.mean, 1),
            Cell::Float(digest.p99, 0),
            Cell::Float(digest.max, 0),
            Cell::Float(digest.max / bound, 3),
        ]);
    }

    let (beta, _) = lowsense_stats::power_exponent(&xs, &maxes);
    table.note("paper: Thm 5.27 — each packet accesses the channel O(ln⁴ S) times w.h.p.");
    table.note(format!(
        "measured: max accesses ~ S^{beta:.2} (≪ 1 ⇒ consistent with polylog(S)); \
         note the stream length grows with S yet per-packet energy barely moves"
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_within_polylog_envelope() {
        let t = &run(Scale::Quick)[0];
        for row in &t.rows {
            if let Cell::Float(ratio, _) = row[5] {
                assert!(ratio < 3.0, "accesses broke the ln⁴(S) envelope ({ratio})");
            }
        }
    }
}
