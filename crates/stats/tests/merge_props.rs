//! Property tests for the mergeable accumulators: `merge` must behave like
//! set union of the underlying samples — associative, commutative, and
//! equal to single-pass accumulation — for every accumulator the campaign
//! layer folds (summary, histogram, quantile sketch).
//!
//! Integer-count accumulators ([`LogHistogram`], [`QuantileSketch`]) are
//! held to **bitwise** equality. [`Welford`] combines f64 moments, so its
//! merge is associative/commutative only up to floating-point rounding;
//! the campaign layer gets bit-reproducibility back by always merging in
//! canonical cell/replicate order (see `docs/ARCHITECTURE.md`).

use lowsense_stats::{LogHistogram, QuantileSketch, Welford};
use proptest::collection::vec;
use proptest::prelude::*;

fn welford_of(xs: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w
}

fn hist_of(xs: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new(2.0, 12);
    for &x in xs {
        h.push(x);
    }
    h
}

fn sketch_of(xs: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &x in xs {
        s.push(x);
    }
    s
}

/// Approximate Welford equality: identical counts/extrema, moments within
/// a relative tolerance.
fn welford_close(a: &Welford, b: &Welford) -> bool {
    a.count() == b.count()
        && a.min() == b.min()
        && a.max() == b.max()
        && (a.mean() - b.mean()).abs() <= 1e-9 * (1.0 + a.mean().abs())
        && (a.variance() - b.variance()).abs() <= 1e-6 * (1.0 + a.variance().abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge == single-pass accumulation over the concatenated sample.
    #[test]
    fn merge_equals_single_pass(
        xs in vec(0.0f64..1e6, 0..200),
        ys in vec(0.0f64..1e6, 0..200),
    ) {
        let whole: Vec<f64> = xs.iter().chain(&ys).copied().collect();

        let mut w = welford_of(&xs);
        w.merge(&welford_of(&ys));
        prop_assert!(welford_close(&w, &welford_of(&whole)));

        let mut h = hist_of(&xs);
        h.merge(&hist_of(&ys));
        prop_assert_eq!(h, hist_of(&whole));

        let mut s = sketch_of(&xs);
        s.merge(&sketch_of(&ys));
        prop_assert_eq!(s, sketch_of(&whole));
    }

    /// merge(a, b) == merge(b, a).
    #[test]
    fn merge_is_commutative(
        xs in vec(0.0f64..1e6, 0..200),
        ys in vec(0.0f64..1e6, 0..200),
    ) {
        let mut wab = welford_of(&xs);
        wab.merge(&welford_of(&ys));
        let mut wba = welford_of(&ys);
        wba.merge(&welford_of(&xs));
        prop_assert!(welford_close(&wab, &wba));

        let mut hab = hist_of(&xs);
        hab.merge(&hist_of(&ys));
        let mut hba = hist_of(&ys);
        hba.merge(&hist_of(&xs));
        prop_assert_eq!(hab, hba);

        let mut sab = sketch_of(&xs);
        sab.merge(&sketch_of(&ys));
        let mut sba = sketch_of(&ys);
        sba.merge(&sketch_of(&xs));
        prop_assert_eq!(sab, sba);
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)).
    #[test]
    fn merge_is_associative(
        xs in vec(0.0f64..1e6, 0..150),
        ys in vec(0.0f64..1e6, 0..150),
        zs in vec(0.0f64..1e6, 0..150),
    ) {
        let mut wl = welford_of(&xs);
        wl.merge(&welford_of(&ys));
        wl.merge(&welford_of(&zs));
        let mut wr_tail = welford_of(&ys);
        wr_tail.merge(&welford_of(&zs));
        let mut wr = welford_of(&xs);
        wr.merge(&wr_tail);
        prop_assert!(welford_close(&wl, &wr));

        let mut hl = hist_of(&xs);
        hl.merge(&hist_of(&ys));
        hl.merge(&hist_of(&zs));
        let mut hr_tail = hist_of(&ys);
        hr_tail.merge(&hist_of(&zs));
        let mut hr = hist_of(&xs);
        hr.merge(&hr_tail);
        prop_assert_eq!(hl, hr);

        let mut sl = sketch_of(&xs);
        sl.merge(&sketch_of(&ys));
        sl.merge(&sketch_of(&zs));
        let mut sr_tail = sketch_of(&ys);
        sr_tail.merge(&sketch_of(&zs));
        let mut sr = sketch_of(&xs);
        sr.merge(&sr_tail);
        prop_assert_eq!(sl, sr);
    }

    /// The sketch's quantile estimates stay within the documented relative
    /// error of the exact sample quantiles after an arbitrary merge split.
    #[test]
    fn merged_sketch_quantiles_track_exact(
        xs in vec(0.5f64..1e5, 1..200),
        ys in vec(0.5f64..1e5, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut s = sketch_of(&xs);
        s.merge(&sketch_of(&ys));
        let whole: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let est = s.quantile(q);
        // The estimate must be within the bucketing error of *some*
        // neighbourhood of the exact quantile: compare against the nearest
        // sample value to avoid interpolation mismatches.
        let nearest = whole
            .iter()
            .copied()
            .min_by(|a, b| {
                (a - est).abs().partial_cmp(&(b - est).abs()).unwrap()
            })
            .unwrap();
        prop_assert!(
            (est - nearest).abs() <= nearest * 0.004 + 1e-9,
            "q={q}: estimate {est} vs nearest sample {nearest}"
        );
    }
}
