//! Quantiles (linear interpolation, R-7 convention).

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of `xs` using linear
/// interpolation between order statistics (the R-7 / NumPy default).
///
/// Sorts a copy; `O(n log n)`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q {q} out of [0,1]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in sample"));
    quantile_sorted(&v, q)
}

/// [`quantile`] for data already sorted ascending; `O(1)`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q {q} out of [0,1]");
    let h = q * (xs.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo])
    }
}

/// Median shorthand.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Common tail summary `(p50, p90, p99, max)` of integer counts.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn tail_summary(xs: &[u64]) -> (f64, f64, f64, f64) {
    let mut v: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("counts are not NaN"));
    (
        quantile_sorted(&v, 0.5),
        quantile_sorted(&v, 0.9),
        quantile_sorted(&v, 0.99),
        *v.last().expect("non-empty"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(median(&xs), 2.0);
    }

    #[test]
    fn interpolation() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.37), 42.0);
    }

    #[test]
    fn matches_numpy_convention() {
        // numpy.quantile([1,2,3,4], 0.4) == 2.2
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.4) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn tail_summary_shape() {
        let xs: Vec<u64> = (1..=100).collect();
        let (p50, p90, p99, max) = tail_summary(&xs);
        assert!((p50 - 50.5).abs() < 1e-9);
        assert!((p90 - 90.1).abs() < 0.2);
        assert!((p99 - 99.01).abs() < 0.2);
        assert_eq!(max, 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_q_panics() {
        quantile(&[1.0], 1.5);
    }
}
