//! # lowsense-stats — Monte Carlo post-processing
//!
//! Dependency-free statistics used by the experiment harness: summaries,
//! quantiles, OLS regression, growth-shape fits (power / polylog exponents)
//! for validating the paper's asymptotic claims, bootstrap confidence
//! intervals, and log-spaced histograms. The streaming accumulators
//! ([`Welford`], [`LogHistogram`], [`QuantileSketch`]) are **mergeable** —
//! each has a `merge` that combines partial aggregates — which is what the
//! campaign layer's sharded sweeps fold with.
//!
//! ```
//! use lowsense_stats::{fit, Summary};
//!
//! let xs: Vec<f64> = (6..=16).map(|k| (1u64 << k) as f64).collect();
//! let polylog_data: Vec<f64> = xs.iter().map(|x| x.ln().powi(4)).collect();
//! let (k, r2) = fit::polylog_exponent(&xs, &polylog_data);
//! assert!((k - 4.0).abs() < 1e-9 && r2 > 0.99);
//! assert_eq!(Summary::of(&[1.0, 2.0, 3.0]).n, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod fit;
pub mod histogram;
pub mod quantile;
pub mod regression;
pub mod sketch;
pub mod summary;

pub use bootstrap::{bootstrap_mean_ci, Interval};
pub use fit::{classify_growth, polylog_exponent, power_exponent, Growth};
pub use histogram::LogHistogram;
pub use quantile::{median, quantile, quantile_sorted, tail_summary};
pub use regression::{ols, Fit};
pub use sketch::QuantileSketch;
pub use summary::{Summary, Welford};
