//! Bootstrap confidence intervals.
//!
//! Self-contained (including its own SplitMix64 stream) so the stats crate
//! stays dependency-free.

/// A two-sided confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Percentile-bootstrap CI for the mean at confidence `1 − alpha`, using
/// `resamples` bootstrap replicates and deterministic `seed`.
///
/// # Panics
///
/// Panics if `xs` is empty, `resamples == 0`, or `alpha` outside `(0, 1)`.
pub fn bootstrap_mean_ci(xs: &[f64], resamples: usize, alpha: f64, seed: u64) -> Interval {
    assert!(!xs.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha {alpha} out of (0,1)");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let mut state = seed ^ 0xB007_5EED;
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut s = 0.0;
            for _ in 0..n {
                let idx = (splitmix(&mut state) % n as u64) as usize;
                s += xs[idx];
            }
            s / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let lo = crate::quantile::quantile_sorted(&means, alpha / 2.0);
    let hi = crate::quantile::quantile_sorted(&means, 1.0 - alpha / 2.0);
    Interval { mean, lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_mean() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&xs, 500, 0.05, 42);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!((ci.mean - 4.5).abs() < 1e-12);
        // The CI of a 200-point sample with sd≈2.9 is roughly ±0.4.
        assert!(ci.hi - ci.lo < 1.5);
        assert!(ci.hi - ci.lo > 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_mean_ci(&xs, 200, 0.1, 7);
        let b = bootstrap_mean_ci(&xs, 200, 0.1, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_sample_gives_point_interval() {
        let ci = bootstrap_mean_ci(&[3.0, 3.0, 3.0], 100, 0.05, 1);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        bootstrap_mean_ci(&[], 10, 0.05, 0);
    }
}
