//! Log-spaced histograms for heavy-tailed count data.

/// A histogram with geometrically growing bucket edges.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Upper edges of the buckets (exclusive); the last bucket is open.
    edges: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram covering `[0, ∞)` with buckets
    /// `[0,1), [1, base), [base, base²), …` — `levels` geometric buckets
    /// plus the open tail.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 1` and `levels ≥ 1`.
    pub fn new(base: f64, levels: usize) -> Self {
        assert!(base > 1.0, "base must exceed 1");
        assert!(levels >= 1, "need at least one level");
        let mut edges = Vec::with_capacity(levels + 1);
        edges.push(1.0);
        let mut e = 1.0;
        for _ in 0..levels {
            e *= base;
            edges.push(e);
        }
        let buckets = edges.len() + 1; // plus the open tail
        LogHistogram {
            edges,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Adds one observation (must be non-negative).
    pub fn push(&mut self, x: f64) {
        debug_assert!(x >= 0.0, "histogram values must be non-negative");
        let idx = self
            .edges
            .iter()
            .position(|&e| x < e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Folds another histogram into this one by adding bucket counts.
    ///
    /// Counts are integers, so merging is *exactly* associative and
    /// commutative and equals single-pass accumulation bit for bit — the
    /// property the campaign layer's shard-local folding relies on.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different edges
    /// (different `base`/`levels`).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.edges, other.edges,
            "merging histograms with different bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates `(lower, upper, count)` rows; `upper` is `f64::INFINITY`
    /// for the tail bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| {
            let lo = if i == 0 { 0.0 } else { self.edges[i - 1] };
            let hi = self.edges.get(i).copied().unwrap_or(f64::INFINITY);
            (lo, hi, self.counts[i])
        })
    }

    /// Fraction of observations at or beyond `threshold`'s bucket.
    pub fn tail_fraction(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = self
            .edges
            .iter()
            .position(|&e| threshold < e)
            .unwrap_or(self.edges.len());
        let tail: u64 = self.counts[idx..].iter().sum();
        tail as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_geometric() {
        let h = LogHistogram::new(2.0, 3);
        let rows: Vec<_> = h.buckets().collect();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], (0.0, 1.0, 0));
        assert_eq!(rows[1], (1.0, 2.0, 0));
        assert_eq!(rows[2], (2.0, 4.0, 0));
        assert_eq!(rows[3], (4.0, 8.0, 0));
        assert_eq!(rows[4], (8.0, f64::INFINITY, 0));
    }

    #[test]
    fn push_routes_to_buckets() {
        let mut h = LogHistogram::new(2.0, 3);
        for x in [0.0, 0.5, 1.0, 3.0, 7.9, 8.0, 100.0] {
            h.push(x);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 1, 1, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn tail_fraction() {
        let mut h = LogHistogram::new(2.0, 3);
        for x in [0.5, 1.5, 3.0, 9.0] {
            h.push(x);
        }
        assert!((h.tail_fraction(8.0) - 0.25).abs() < 1e-12);
        assert!((h.tail_fraction(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass_exactly() {
        let xs = [0.0, 0.5, 1.0, 3.0, 7.9, 8.0, 100.0, 2.0, 4.0];
        let mut whole = LogHistogram::new(2.0, 3);
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (LogHistogram::new(2.0, 3), LogHistogram::new(2.0, 3));
        for &x in &xs[..4] {
            a.push(x);
        }
        for &x in &xs[4..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = LogHistogram::new(2.0, 3);
        a.merge(&LogHistogram::new(2.0, 4));
    }

    #[test]
    fn empty_tail_fraction_is_zero() {
        let h = LogHistogram::new(10.0, 2);
        assert_eq!(h.tail_fraction(5.0), 0.0);
    }
}
