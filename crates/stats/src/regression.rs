//! Ordinary least squares on one predictor.

/// Result of fitting `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Estimated intercept.
    pub intercept: f64,
    /// Estimated slope.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; 0 when the
    /// model explains nothing; defined as 1 when `y` is constant and fitted
    /// exactly).
    pub r2: f64,
}

/// Fits `y ≈ a + b·x` by least squares.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than 2 points, or `x`
/// is constant.
pub fn ols(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit {
        intercept,
        slope,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = ols(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                2.0 * x
                    + if (x as u64).is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    }
            })
            .collect();
        let f = ols(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r2 > 0.99 && f.r2 < 1.0);
    }

    #[test]
    fn constant_y_is_perfectly_explained() {
        let f = ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_x_panics() {
        ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn one_point_panics() {
        ols(&[1.0], &[1.0]);
    }
}
