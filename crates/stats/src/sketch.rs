//! A mergeable streaming quantile sketch with bounded relative error.
//!
//! [`QuantileSketch`] buckets non-negative `f64`s by exponent plus the top
//! few mantissa bits (the HdrHistogram / DDSketch log-linear layout): every
//! observation lands in a bucket whose edges are `2^-b` apart in relative
//! terms, so any quantile estimate is within relative error `2^-(b+1)` of a
//! true sample value. Bucket counts are integers, which makes
//! [`QuantileSketch::merge`] **exactly** associative and commutative and
//! bit-identical to single-pass accumulation — the property that lets
//! campaign shards fold locally and the driver combine partial sketches in
//! any grouping without changing the result.
//!
//! Contrast with [`quantile()`](crate::quantile::quantile), which stores
//! the whole sample for exact answers: the sketch is `O(buckets)` memory
//! regardless of stream length, at the price of the (deterministic,
//! bounded) bucketing error.
//!
//! ```
//! use lowsense_stats::QuantileSketch;
//!
//! let mut a = QuantileSketch::new();
//! let mut b = QuantileSketch::new();
//! for x in 1..=600u64 {
//!     if x % 2 == 0 { a.push(x as f64) } else { b.push(x as f64) }
//! }
//! a.merge(&b);
//! let p50 = a.quantile(0.5);
//! assert!((p50 - 300.0).abs() / 300.0 < 0.01);
//! ```

use std::collections::BTreeMap;

/// Default mantissa bits per octave: 128 sub-buckets per power of two,
/// i.e. relative error below `2^-8 ≈ 0.4%`.
pub const DEFAULT_PRECISION_BITS: u32 = 7;

/// A mergeable quantile sketch over non-negative finite `f64`s.
///
/// See the [module docs](self) for the guarantees and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    bits: u32,
    /// Sparse bucket counts keyed by the value's top `11 + bits` float
    /// bits; `BTreeMap` so iteration is in ascending value order.
    counts: BTreeMap<u32, u64>,
    /// Exact zeros (including `-0.0`, normalized on entry).
    zeros: u64,
    total: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch at the default precision
    /// ([`DEFAULT_PRECISION_BITS`]).
    pub fn new() -> Self {
        QuantileSketch::with_precision(DEFAULT_PRECISION_BITS)
    }

    /// An empty sketch keeping the top `bits` mantissa bits per bucket
    /// (relative error `≤ 2^-(bits+1)`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`.
    pub fn with_precision(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "precision bits out of [1,16]");
        QuantileSketch {
            bits,
            counts: BTreeMap::new(),
            zeros: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative, NaN, or infinite.
    pub fn push(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "sketch values must be non-negative and finite (got {x})"
        );
        // Normalize -0.0 so min/max and the zero bucket are sign-blind.
        let x = if x == 0.0 { 0.0 } else { x };
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x == 0.0 {
            self.zeros += 1;
        } else {
            *self.counts.entry(self.bucket(x)).or_insert(0) += 1;
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Folds another sketch into this one. Exactly associative and
    /// commutative (integer bucket counts; see the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different precisions.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.bits, other.bits,
            "merging sketches of different precision"
        );
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.zeros += other.zeros;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`); 0 for an empty sketch.
    ///
    /// The returned value is the midpoint of the bucket holding the
    /// rank-`⌈q·n⌉` observation, clamped into `[min, max]` — so it is
    /// within relative error `2^-(bits+1)` of a true sample order
    /// statistic.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q {q} out of [0,1]");
        if self.total == 0 {
            return 0.0;
        }
        // Rank of the order statistic to report, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // The extreme order statistics are tracked exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.total {
            return self.max;
        }
        if rank <= self.zeros {
            return 0.0;
        }
        let mut cum = self.zeros;
        for (&k, &c) in &self.counts {
            cum += c;
            if cum >= rank {
                return self.representative(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The bucket key of a positive finite `x`: its sign-less top
    /// `11 + bits` IEEE-754 bits, which order exactly as the values do.
    fn bucket(&self, x: f64) -> u32 {
        debug_assert!(x > 0.0);
        (x.to_bits() >> (52 - self.bits)) as u32
    }

    /// Midpoint of the bucket `k` covers (deterministic; the value every
    /// observation in the bucket is reported as).
    fn representative(&self, k: u32) -> f64 {
        let lo = f64::from_bits((k as u64) << (52 - self.bits));
        let hi = f64::from_bits(((k as u64) + 1) << (52 - self.bits));
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn quantiles_track_exact_within_relative_error() {
        let mut s = QuantileSketch::new();
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        for &x in &xs {
            s.push(x);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = crate::quantile(&xs, q);
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() <= exact * 0.005 + 1.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10_000.0);
    }

    #[test]
    fn merge_is_bitwise_equal_to_single_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 211) as f64 * 0.5).collect();
        let mut whole = QuantileSketch::new();
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (QuantileSketch::new(), QuantileSketch::new());
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal single-pass accumulation");
    }

    #[test]
    fn zeros_and_negative_zero() {
        let mut s = QuantileSketch::new();
        s.push(0.0);
        s.push(-0.0);
        s.push(4.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert!(s.quantile(1.0) > 3.9);
    }

    #[test]
    fn extreme_quantiles_clamp_to_observed_range() {
        let mut s = QuantileSketch::new();
        s.push(3.7);
        s.push(9.1);
        assert_eq!(s.quantile(0.0), 3.7);
        assert_eq!(s.quantile(1.0), 9.1);
    }

    #[test]
    fn subnormals_and_tiny_values_are_ordered() {
        let mut s = QuantileSketch::new();
        for x in [1e-300, 1e-10, 1.0, 1e10] {
            s.push(x);
        }
        let p0 = s.quantile(0.01);
        let p99 = s.quantile(1.0);
        assert!(p0 < 1e-200, "small end {p0}");
        assert!(p99 > 1e9, "large end {p99}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_panic() {
        QuantileSketch::new().push(-1.0);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mixed_precisions() {
        let mut a = QuantileSketch::with_precision(7);
        a.merge(&QuantileSketch::with_precision(8));
    }
}
