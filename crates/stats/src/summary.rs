//! Five-number summaries and online (Welford) accumulation.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub sd: f64,
    /// Standard error of the mean.
    pub se: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice.
    ///
    /// Returns the degenerate all-zero summary for an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut acc = Welford::new();
        for &x in xs {
            acc.push(x);
        }
        acc.summary()
    }

    /// Convenience: summarize integer counts.
    pub fn of_counts(xs: &[u64]) -> Self {
        let mut acc = Welford::new();
        for &x in xs {
            acc.push(x as f64);
        }
        acc.summary()
    }
}

/// Numerically stable online mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    /// Same as [`Welford::new`] — a derived `Default` would zero the
    /// extrema and report a false minimum after the first push.
    fn default() -> Self {
        Welford::new()
    }
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one (Chan et al.'s parallel
    /// update), as if every observation pushed into `other` had been pushed
    /// here.
    ///
    /// `count`, `min`, and `max` combine exactly; `mean`/`m2` combine up to
    /// floating-point rounding, so merging is associative and commutative
    /// only to within a few ulps — callers that need bit-reproducible
    /// aggregates (the campaign layer) must merge in a canonical order.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.n as f64 / n as f64);
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64 / n as f64);
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Minimum observation (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1; 0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Finalizes into a [`Summary`].
    pub fn summary(&self) -> Summary {
        if self.n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                sd: 0.0,
                se: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let sd = self.variance().sqrt();
        Summary {
            n: self.n,
            mean: self.mean,
            sd,
            se: sd / (self.n as f64).sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd of this classic set is sqrt(32/7).
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean - mean).abs() < 1e-9);
        assert!((s.sd - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn counts_convenience() {
        let s = Summary::of_counts(&[1, 2, 3]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_pass() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 73) % 257) as f64 / 3.0).collect();
        for split in [0, 1, 250, 499, 500] {
            let mut a = Welford::new();
            let mut b = Welford::new();
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            a.merge(&b);
            let whole = {
                let mut w = Welford::new();
                for &x in &xs {
                    w.push(x);
                }
                w
            };
            assert_eq!(a.count(), whole.count());
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
            assert!((a.mean() - whole.mean()).abs() < 1e-9, "split {split}");
            assert!(
                (a.variance() - whole.variance()).abs() < 1e-9,
                "split {split}"
            );
        }
    }

    #[test]
    fn default_is_the_empty_accumulator() {
        let mut w = Welford::default();
        assert_eq!(w, Welford::new());
        w.push(5.0);
        assert_eq!(w.min(), 5.0, "extrema must start at ±∞, not 0");
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(2.0);
        a.push(5.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before, "merging an empty accumulator changes nothing");
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before, "merging into empty copies the other side");
    }

    #[test]
    fn se_shrinks_with_n() {
        let a = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = [1.0, 2.0, 3.0, 4.0].repeat(100);
        let b = Summary::of(&many);
        assert!(b.se < a.se);
    }
}
