//! Growth-shape fitting for asymptotic claims.
//!
//! The paper's bounds are asymptotic (`polylog`, linear, `Θ(1)`); the
//! experiments validate *shapes* over geometric sweeps. Two transformed
//! regressions make shapes quantitative:
//!
//! * [`power_exponent`] — fit `y ∝ x^β` (`ln y` vs `ln x`). A polylog
//!   quantity shows `β` near 0 and shrinking as the sweep widens; a linear
//!   one shows `β ≈ 1`.
//! * [`polylog_exponent`] — fit `y ∝ (ln x)^k` (`ln y` vs `ln ln x`),
//!   estimating the polylog degree `k` directly.

use crate::regression::{ols, Fit};

/// Fits `y ≈ A·x^β`; returns `(β, R²)` of the log–log regression.
///
/// # Panics
///
/// Panics unless all values are strictly positive and ≥ 2 points are given.
pub fn power_exponent(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let (lx, ly) = log_transform(xs, ys, |x| x.ln());
    let Fit { slope, r2, .. } = ols(&lx, &ly);
    (slope, r2)
}

/// Fits `y ≈ A·(ln x)^k`; returns `(k, R²)`.
///
/// # Panics
///
/// Panics unless all `x > 1` (so `ln ln x` is defined), all `y > 0`, and
/// ≥ 2 points are given.
pub fn polylog_exponent(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let (lx, ly) = log_transform(xs, ys, |x| {
        assert!(x > 1.0, "polylog fit needs x > 1, got {x}");
        x.ln().ln()
    });
    let Fit { slope, r2, .. } = ols(&lx, &ly);
    (slope, r2)
}

fn log_transform(xs: &[f64], ys: &[f64], fx: impl Fn(f64) -> f64) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "positive x required, got {x}");
            fx(x)
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "positive y required, got {y}");
            y.ln()
        })
        .collect();
    (lx, ly)
}

/// Classification of a measured growth shape against the paper's claims.
///
/// Caveat on resolution: over practically simulable ranges (say
/// `x ∈ [2⁶, 2²⁰]`) a degree-4 polylog is numerically indistinguishable
/// from `√x` — both grow by ~120× and fit either model with high `R²`. The
/// `Polylog` bucket therefore means *"strongly sublinear, consistent with
/// the polylog claim"* (power exponent < 0.6); experiments additionally
/// report the fitted polylog degree for the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Growth {
    /// Power exponent below 0.6: consistent with polylogarithmic growth
    /// (see type-level caveat).
    Polylog,
    /// Power exponent in `[0.6, 0.85)`.
    Sublinear,
    /// Power exponent in `[0.85, 1.25)`: consistent with linear growth.
    Linear,
    /// Power exponent ≥ 1.25.
    Superlinear,
}

/// Classifies the growth of `y` in `x` by power-law exponent.
pub fn classify_growth(xs: &[f64], ys: &[f64]) -> Growth {
    let (beta, _) = power_exponent(xs, ys);
    if beta < 0.6 {
        Growth::Polylog
    } else if beta < 0.85 {
        Growth::Sublinear
    } else if beta < 1.25 {
        Growth::Linear
    } else {
        Growth::Superlinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<f64> {
        (6..=20).map(|k| (1u64 << k) as f64).collect()
    }

    #[test]
    fn power_fit_recovers_exponent() {
        let xs = sweep();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        let (beta, r2) = power_exponent(&xs, &ys);
        assert!((beta - 0.5).abs() < 1e-9);
        assert!(r2 > 0.999);
    }

    #[test]
    fn polylog_fit_recovers_degree() {
        let xs = sweep();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.ln().powi(4)).collect();
        let (k, r2) = polylog_exponent(&xs, &ys);
        assert!((k - 4.0).abs() < 1e-9, "k = {k}");
        assert!(r2 > 0.999);
    }

    #[test]
    fn polylog_data_has_small_power_exponent() {
        // ln⁴x over [2⁶, 2²⁰] masquerades as x^≈0.5 — the documented
        // resolution limit; it still lands in the Polylog bucket.
        let xs = sweep();
        let ys: Vec<f64> = xs.iter().map(|x| x.ln().powi(4)).collect();
        let (beta, _) = power_exponent(&xs, &ys);
        assert!((0.3..0.6).contains(&beta), "ln⁴ looks like x^{beta}");
        assert_eq!(classify_growth(&xs, &ys), Growth::Polylog);
        // Lower-degree polylogs resolve much more sharply.
        let ys2: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let (beta2, _) = power_exponent(&xs, &ys2);
        assert!(beta2 < 0.2, "ln x looks like x^{beta2}");
    }

    #[test]
    fn linear_data_classified_linear() {
        let xs = sweep();
        let ys: Vec<f64> = xs.iter().map(|x| 0.3 * x).collect();
        assert_eq!(classify_growth(&xs, &ys), Growth::Linear);
    }

    #[test]
    fn quadratic_data_classified_superlinear() {
        let xs = sweep();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(classify_growth(&xs, &ys), Growth::Superlinear);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        power_exponent(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
